package faults

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// The firing schedule is a pure function of (seed, point, hit number):
// replaying the same number of hits fires the same set.
func TestDeterministicSchedule(t *testing.T) {
	const n = 10_000
	run := func(seed int64) []int64 {
		var fired []int64
		for i := int64(1); i <= n; i++ {
			if fires(seed, PoolWorker, i, 7, 0x9e3779) {
				fired = append(fired, i)
			}
		}
		return fired
	}
	a, b := run(42), run(42)
	if len(a) == 0 {
		t.Fatal("schedule with every=7 fired nothing over 10k hits")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
	// Rough rate check: every=7 should fire within 3x of n/7 either way.
	if len(a) < n/21 || len(a) > 3*n/7 {
		t.Fatalf("every=7 fired %d of %d hits", len(a), n)
	}
	if c := run(43); len(c) == len(a) {
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced an identical schedule")
		}
	}
}

func TestInjectPanicsCarryInjectedPanic(t *testing.T) {
	Enable(NewPlan(1, map[Point]Rule{EngineEval: {PanicEvery: 1}}))
	defer Disable()
	defer func() {
		r := recover()
		ip, ok := r.(InjectedPanic)
		if !ok {
			t.Fatalf("recovered %v (%T), want InjectedPanic", r, r)
		}
		if ip.Point != EngineEval || ip.N != 1 {
			t.Fatalf("InjectedPanic = %+v", ip)
		}
	}()
	Inject(EngineEval)
	t.Fatal("Inject with PanicEvery=1 did not panic")
}

func TestInjectStalls(t *testing.T) {
	p := NewPlan(1, map[Point]Rule{SATSolve: {StallEvery: 1, Stall: 30 * time.Millisecond}})
	Enable(p)
	defer Disable()
	start := time.Now()
	Inject(SATSolve)
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("stall slept %v, want ~30ms", d)
	}
	if p.Fired(SATSolve) != 1 || p.Hits(SATSolve) != 1 {
		t.Fatalf("fired=%d hits=%d", p.Fired(SATSolve), p.Hits(SATSolve))
	}
}

// Disabled injection must be safe from every goroutine and points without
// rules must not count.
func TestDisabledAndUnruledPoints(t *testing.T) {
	Disable()
	Inject(PoolWorker) // no plan: no-op
	p := NewPlan(1, map[Point]Rule{PoolWorker: {PanicEvery: 100000}})
	Enable(p)
	defer Disable()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				Inject(EngineEval) // unruled: no-op
				Inject(PoolWorker)
			}
		}()
	}
	wg.Wait()
	if got := p.Hits(PoolWorker); got != 800 {
		t.Fatalf("hits = %d, want 800", got)
	}
	if got := p.Hits(EngineEval); got != 0 {
		t.Fatalf("unruled point counted %d hits", got)
	}
}

// InjectErr returns ErrInjected-wrapped errors on the seeded schedule and
// stays deterministic: the same hit sequence fails the same hits.
func TestInjectErr(t *testing.T) {
	p := NewPlan(9, map[Point]Rule{ClusterDial: {ErrorEvery: 3}})
	Enable(p)
	defer Disable()
	const n = 300
	var failed []int
	for i := 0; i < n; i++ {
		if err := InjectErr(ClusterDial); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("injected error %v is not ErrInjected", err)
			}
			failed = append(failed, i)
		}
	}
	if len(failed) < n/9 || len(failed) > n {
		t.Fatalf("ErrorEvery=3 failed %d of %d hits", len(failed), n)
	}
	if got := p.Fired(ClusterDial); got != int64(len(failed)) {
		t.Fatalf("Fired = %d, want %d", got, len(failed))
	}
	// Replay: a fresh plan with the same seed fails the same hit numbers.
	p2 := NewPlan(9, map[Point]Rule{ClusterDial: {ErrorEvery: 3}})
	Enable(p2)
	var failed2 []int
	for i := 0; i < n; i++ {
		if err := InjectErr(ClusterDial); err != nil {
			failed2 = append(failed2, i)
		}
	}
	if len(failed) != len(failed2) {
		t.Fatalf("replay failed %d hits, want %d", len(failed2), len(failed))
	}
	for i := range failed {
		if failed[i] != failed2[i] {
			t.Fatalf("replay diverged at %d: hit %d vs %d", i, failed[i], failed2[i])
		}
	}
}

// InjectErr with no plan, no rule, or a stall-only rule returns nil (and
// stall rules still fire in place).
func TestInjectErrNonErrorRules(t *testing.T) {
	Disable()
	if err := InjectErr(ClusterDial); err != nil {
		t.Fatalf("disabled InjectErr = %v", err)
	}
	p := NewPlan(1, map[Point]Rule{ClusterBody: {StallEvery: 1, Stall: 30 * time.Millisecond}})
	Enable(p)
	defer Disable()
	start := time.Now()
	if err := InjectErr(ClusterBody); err != nil {
		t.Fatalf("stall-only InjectErr = %v", err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("stall slept %v, want ~30ms", d)
	}
}

func TestParseSpec(t *testing.T) {
	p, err := ParseSpec("panic:pool.worker:7,stall:engine.eval:13:20ms,stall:sat.solve:3,error:cluster.dial:5", 42)
	if err != nil {
		t.Fatal(err)
	}
	if r := p.rules[PoolWorker]; r.PanicEvery != 7 {
		t.Fatalf("pool.worker rule = %+v", r)
	}
	if r := p.rules[ClusterDial]; r.ErrorEvery != 5 {
		t.Fatalf("cluster.dial rule = %+v", r)
	}
	if r := p.rules[EngineEval]; r.StallEvery != 13 || r.Stall != 20*time.Millisecond {
		t.Fatalf("engine.eval rule = %+v", r)
	}
	if r := p.rules[SATSolve]; r.StallEvery != 3 || r.Stall != 10*time.Millisecond {
		t.Fatalf("sat.solve default stall = %+v", r)
	}
	if p, err := ParseSpec("", 1); p != nil || err != nil {
		t.Fatalf("empty spec = %v, %v", p, err)
	}
	for _, bad := range []string{
		"panic:pool.worker", "panic:nosuch.point:3", "explode:pool.worker:3",
		"panic:pool.worker:0", "panic:pool.worker:3:10ms", "stall:pool.worker:3:bogus",
		"error:cluster.dial:3:10ms",
	} {
		if _, err := ParseSpec(bad, 1); err == nil {
			t.Fatalf("ParseSpec(%q) accepted", bad)
		}
	}
}
