// Package lint is a stdlib-only reimplementation of the subset of
// golang.org/x/tools/go/analysis that the ratestlint suite needs: an
// Analyzer/Pass API, a typechecking loader driven by the cmd/go vet
// protocol (see unitchecker.go), and suppression directives.
//
// The container this repo builds in has no module proxy access and the
// module deliberately has zero third-party dependencies, so vendoring
// x/tools is not an option; the API below mirrors x/tools closely enough
// that the analyzers would port to the real framework mechanically.
//
// # Suppression directives
//
// A diagnostic is suppressed by a comment directive
//
//	//lint:<name> <reason>
//
// where <name> is the analyzer's Directive (e.g. "ordered" for
// mapdeterminism) and <reason> is a mandatory free-text justification.
// The directive applies to diagnostics reported on its own source line or
// on the line immediately below (so it can sit at the end of a `for`
// line or on its own line above one). A directive with no reason is
// itself reported as a diagnostic: every suppression in the repo must be
// explained. See docs/LINTING.md for the catalogue of analyzers.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer is one static check. Mirrors x/tools go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and JSON output.
	Name string
	// Doc is the analyzer's help text; the first line is a summary.
	Doc string
	// Directive is the suppression directive suffix recognized in
	// "//lint:<Directive> <reason>" comments. Empty means the analyzer
	// cannot be suppressed.
	Directive string
	// SkipTests excludes _test.go files from the analysis (budget polls
	// and saturating arithmetic are production-code invariants; test
	// fixtures legitimately run unbudgeted loops and raw arithmetic).
	SkipTests bool
	// Run performs the analysis on one package and reports diagnostics
	// through the pass.
	Run func(*Pass)
}

// A Pass is one (analyzer, package) analysis unit. Mirrors
// x/tools go/analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags      []Diagnostic
	directives []directive
}

// A Diagnostic is one reported problem.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// directive is one parsed //lint:<name> <reason> comment.
type directive struct {
	name   string // analyzer Directive suffix
	reason string
	line   int    // line the comment ends on
	file   string // filename
	pos    token.Position
	used   bool
}

var directiveRE = regexp.MustCompile(`^//lint:([a-z]+)(?:\s+(.*))?$`)

// newPass builds a pass and collects its files' suppression directives.
func newPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) *Pass {
	p := &Pass{Analyzer: a, Fset: fset, Files: files, Pkg: pkg, TypesInfo: info}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := directiveRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.End())
				p.directives = append(p.directives, directive{
					name:   m[1],
					reason: strings.TrimSpace(m[2]),
					line:   pos.Line,
					file:   pos.Filename,
					pos:    fset.Position(c.Pos()),
				})
			}
		}
	}
	return p
}

// TypeOf returns the static type of e, or nil if the typechecker did not
// record one.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if tv, ok := p.TypesInfo.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj, ok := p.TypesInfo.Uses[id]; ok {
			return obj.Type()
		}
		if obj, ok := p.TypesInfo.Defs[id]; ok && obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// Reportf reports a diagnostic at pos unless a matching suppression
// directive covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	for i := range p.directives {
		d := &p.directives[i]
		if d.name != p.Analyzer.Directive || d.file != position.Filename {
			continue
		}
		if d.line == position.Line || d.line == position.Line-1 {
			d.used = true
			return // suppressed (reason checked in finish)
		}
	}
	p.diags = append(p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// finish returns the pass's diagnostics plus one diagnostic per matching
// directive that lacks a reason: suppressions must be justified.
func (p *Pass) finish() []Diagnostic {
	out := p.diags
	for _, d := range p.directives {
		if d.name != p.Analyzer.Directive {
			continue
		}
		if d.used && d.reason == "" {
			out = append(out, Diagnostic{
				Pos:      d.pos,
				Analyzer: p.Analyzer.Name,
				Message:  fmt.Sprintf("//lint:%s directive needs a reason (\"//lint:%s why it is safe\")", d.name, d.name),
			})
		}
	}
	return out
}

// RunForTest applies one analyzer to an already-typechecked package and
// returns its diagnostics; it exists for the linttest harness.
func RunForTest(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) []Diagnostic {
	return runAnalyzers([]*Analyzer{a}, fset, files, pkg, info)
}

// runAnalyzers applies each analyzer to the package and returns the
// combined diagnostics sorted by position.
func runAnalyzers(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) []Diagnostic {
	var out []Diagnostic
	for _, a := range analyzers {
		afiles := files
		if a.SkipTests {
			afiles = nil
			for _, f := range files {
				if !strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go") {
					afiles = append(afiles, f)
				}
			}
		}
		p := newPass(a, fset, afiles, pkg, info)
		a.Run(p)
		out = append(out, p.finish()...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}
