package budgetpoll

import (
	"testing"

	"repro/internal/lint/linttest"
)

func TestBudgetPoll(t *testing.T) {
	linttest.Run(t, Analyzer, "core")
}
