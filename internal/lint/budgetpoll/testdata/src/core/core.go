// Package core is the budgetpoll golden corpus. It is named "core" so the
// analyzer's package scope applies. The flagged cases reproduce the PR 5
// class: evaluation loops that outlive their request budget because
// nothing in the loop polls Ctx/Stop.
package core

type problem struct{ stop func() bool }

func (p *problem) interrupted() bool { return p.stop != nil && p.stop() }

func evalStep(i int) int { return i * 2 }

// The missed-poll bug class: a shrink loop that evaluates candidates but
// never checks the budget.
func shrinkNoPoll(p *problem, n int) int {
	best := 0
	for i := 0; i < n; i++ { // want `loop calls evaluation/solver work but no budget poll`
		best += evalStep(i)
	}
	return best
}

// Polling in the loop body satisfies the analyzer.
func shrinkPolled(p *problem, n int) int {
	best := 0
	for i := 0; i < n; i++ {
		if p.interrupted() {
			return best
		}
		best += evalStep(i)
	}
	return best
}

// evalCand polls one level down; the loop over it is satisfied too.
func evalCand(p *problem, i int) bool {
	if p.interrupted() {
		return false
	}
	return i%2 == 0
}

func shrinkPollInCallee(p *problem, n int) int {
	best := 0
	for i := 0; i < n; i++ {
		if evalCand(p, i) {
			best++
		}
	}
	return best
}

type solver struct {
	Stop      func() bool
	conflicts int
}

func (s *solver) step() bool { return s.conflicts < 100 }

func (s *solver) solveOne() bool { return s.step() }

// An unbounded loop performing calls needs a poll even when no callee
// name looks like evaluation.
func (s *solver) run() {
	for { // want `loop is unbounded but no budget poll`
		if !s.step() {
			break
		}
	}
}

// newSolver wires the budget into the solver; loops over its methods are
// covered by that configuration (the minones pattern).
func newSolver(stop func() bool) *solver {
	s := &solver{}
	s.Stop = stop
	return s
}

func solveAll(stop func() bool, n int) int {
	s := newSolver(stop)
	total := 0
	for i := 0; i < n; i++ {
		if s.solveOne() {
			total++
		}
	}
	return total
}

// Suppressed: bounded by construction.
func fixpoint(n int) int {
	x := 0
	//lint:budgeted monotone fixpoint: x strictly grows toward n each pass
	for {
		x = evalStep(x) + 1
		if x >= n {
			return x
		}
	}
}

// Structural self-recursion is not heavy work; the recursion's driver is
// responsible for polling.
func evalTree(depth int) int {
	if depth == 0 {
		return 1
	}
	total := 0
	for i := 0; i < 2; i++ {
		total += evalTree(depth - 1)
	}
	return total
}
