// Package core is the budgetpoll golden corpus. It is named "core" so the
// analyzer's package scope applies. The flagged cases reproduce the PR 5
// class: evaluation loops that outlive their request budget because
// nothing in the loop polls Ctx/Stop.
package core

type problem struct{ stop func() bool }

func (p *problem) interrupted() bool { return p.stop != nil && p.stop() }

func evalStep(i int) int { return i * 2 }

// The missed-poll bug class: a shrink loop that evaluates candidates but
// never checks the budget.
func shrinkNoPoll(p *problem, n int) int {
	best := 0
	for i := 0; i < n; i++ { // want `loop calls evaluation/solver work but no budget poll`
		best += evalStep(i)
	}
	return best
}

// Polling in the loop body satisfies the analyzer.
func shrinkPolled(p *problem, n int) int {
	best := 0
	for i := 0; i < n; i++ {
		if p.interrupted() {
			return best
		}
		best += evalStep(i)
	}
	return best
}

// evalCand polls one level down; the loop over it is satisfied too.
func evalCand(p *problem, i int) bool {
	if p.interrupted() {
		return false
	}
	return i%2 == 0
}

func shrinkPollInCallee(p *problem, n int) int {
	best := 0
	for i := 0; i < n; i++ {
		if evalCand(p, i) {
			best++
		}
	}
	return best
}

type solver struct {
	Stop      func() bool
	conflicts int
}

func (s *solver) step() bool { return s.conflicts < 100 }

func (s *solver) solveOne() bool { return s.step() }

// An unbounded loop performing calls needs a poll even when no callee
// name looks like evaluation.
func (s *solver) run() {
	for { // want `loop is unbounded but no budget poll`
		if !s.step() {
			break
		}
	}
}

// newSolver wires the budget into the solver; loops over its methods are
// covered by that configuration (the minones pattern).
func newSolver(stop func() bool) *solver {
	s := &solver{}
	s.Stop = stop
	return s
}

func solveAll(stop func() bool, n int) int {
	s := newSolver(stop)
	total := 0
	for i := 0; i < n; i++ {
		if s.solveOne() {
			total++
		}
	}
	return total
}

// Suppressed: bounded by construction.
func fixpoint(n int) int {
	x := 0
	//lint:budgeted monotone fixpoint: x strictly grows toward n each pass
	for {
		x = evalStep(x) + 1
		if x >= n {
			return x
		}
	}
}

// The IVM loop class: applying a stream of deltas through retained state is
// heavy work per step — an update storm that never polls outlives its
// budget exactly like a shrink loop.
type prepared struct{ stop func() bool }

func (p *prepared) applyDelta(id int) bool { return id%2 == 0 }

func (p *prepared) pollStop() bool { return p.stop != nil && p.stop() }

func stormNoPoll(p *prepared, ids []int) int {
	live := 0
	for _, id := range ids { // want `loop calls evaluation/solver work but no budget poll`
		if p.applyDelta(id) {
			live++
		}
	}
	return live
}

func stormPolled(p *prepared, ids []int) int {
	live := 0
	for _, id := range ids {
		if p.pollStop() {
			return live
		}
		if p.applyDelta(id) {
			live++
		}
	}
	return live
}

// A live-grading session's revision loop is the same class: each revision
// re-grades, so the loop must poll between revisions.
type liveSession struct{ epoch int }

func (s *liveSession) reviseQuery(q string) { s.epoch++ }

func (s *liveSession) gradeOnce() bool { return s.epoch%2 == 0 }

func regradeNoPoll(s *liveSession, edits []string) int {
	agree := 0
	for _, q := range edits { // want `loop calls evaluation/solver work but no budget poll`
		s.reviseQuery(q)
		if s.gradeOnce() {
			agree++
		}
	}
	return agree
}

func regradePolled(p *problem, s *liveSession, edits []string) int {
	agree := 0
	for _, q := range edits {
		if p.interrupted() {
			return agree
		}
		s.reviseQuery(q)
		if s.gradeOnce() {
			agree++
		}
	}
	return agree
}

// Structural self-recursion is not heavy work; the recursion's driver is
// responsible for polling.
func evalTree(depth int) int {
	if depth == 0 {
		return 1
	}
	total := 0
	for i := 0; i < 2; i++ {
		total += evalTree(depth - 1)
	}
	return total
}
