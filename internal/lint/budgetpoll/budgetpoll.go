// Package budgetpoll flags loops in the solver/evaluation packages
// (internal/core, internal/engine, internal/sat, internal/minones,
// internal/smt) that do evaluation- or solver-shaped work without a
// reachable budget poll. PR 5 plumbed per-request budgets through the
// whole stack precisely because hot loops that forget to poll let a
// request outlive its deadline; this analyzer keeps new loops honest.
//
// A loop needs a poll when its body calls into evaluation/solving (callee
// name matching eval/solve/search/enumerate/verify/... ) or when it is an
// unbounded `for { ... }` that performs calls. The poll is satisfied by a
// budget-check call reachable in the loop body, its same-package callees
// one level deep (p.interrupted(), opts.Stop(), ctx.Err(), s.Stop(),
// engineOpts()/solverOpts() plumbing, ...), or by the enclosing function
// wiring a Stop/Ctx budget into the callee's configuration before the
// loop. Everything else needs "//lint:budgeted <reason>".
package budgetpoll

import (
	"go/ast"
	"go/types"
	"path"
	"regexp"
	"strings"

	"repro/internal/lint"
)

// Analyzer is the budgetpoll analyzer.
var Analyzer = &lint.Analyzer{
	Name:      "budgetpoll",
	Directive: "budgeted",
	SkipTests: true,
	Doc: `flag evaluation/solver loops with no reachable budget poll

Per-request budgets (core.Problem.Ctx, engine.Options.Stop, sat.Solver.Stop)
only bound latency if hot loops poll them. Poll p.interrupted() / opts.Stop
in the loop, wire the budget into the callee, or suppress with
"//lint:budgeted <reason>" for loops bounded by construction.`,
	Run: run,
}

// scopePkgs are the package basenames the analyzer applies to: the
// packages whose loops run under per-request budgets.
var scopePkgs = map[string]bool{
	"core":    true,
	"engine":  true,
	"sat":     true,
	"minones": true,
	"smt":     true,
}

// heavyWords are identifier-word prefixes marking callees that do
// evaluation- or solver-shaped work. Matching is per camelCase word so
// "Resolve" does not match "solve" but "EvalBatch" matches "eval".
// The delta/revise/grade entries cover the IVM loop class: a session or
// storm loop that applies deltas (ApplyDelta, propagateDelta) or re-grades
// (ReviseQuery, Grade) per step runs under the same per-request budgets as
// one-shot evaluation and must poll between steps.
var heavyWords = []string{"eval", "solve", "disagree", "verify", "enumerate", "minimiz", "shrink", "search", "propagat", "delta", "revise", "grade"}

// isHeavyName reports whether any camelCase word of name starts with a
// heavy-work prefix.
func isHeavyName(name string) bool {
	for _, w := range camelWords(name) {
		for _, h := range heavyWords {
			if strings.HasPrefix(w, h) {
				return true
			}
		}
	}
	return false
}

// camelWords splits an identifier into lowercased words at case
// transitions and underscores: "EvalBatchDiffs" -> [eval batch diffs].
func camelWords(name string) []string {
	var words []string
	start := 0
	for i := 1; i <= len(name); i++ {
		if i == len(name) || name[i] == '_' || (name[i] >= 'A' && name[i] <= 'Z' && !(name[i-1] >= 'A' && name[i-1] <= 'Z')) {
			if i > start {
				words = append(words, strings.ToLower(name[start:i]))
			}
			start = i
			if i < len(name) && name[i] == '_' {
				start = i + 1
			}
		}
	}
	return words
}

// markerRE matches callee names that poll or plumb the budget.
var markerRE = regexp.MustCompile(`(?i)^(interrupted|stop|stopfunc|stopped|err|done|poll.*|.*budget.*|engineopts|solveropts)$`)

func run(pass *lint.Pass) {
	if !scopePkgs[path.Base(pass.Pkg.Path())] {
		return
	}

	// Index this package's function declarations by object, for the
	// one-level-deep callee scan.
	decls := map[types.Object]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
					decls[obj] = fd
				}
			}
		}
	}

	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd, decls)
		}
	}
}

func checkFunc(pass *lint.Pass, fd *ast.FuncDecl, decls map[types.Object]*ast.FuncDecl) {
	// Calls back into the enclosing function (structural recursion over a
	// formula/plan tree) are not counted as heavy work: the recursion's
	// driver is responsible for polling.
	self := pass.TypesInfo.Defs[fd.Name]

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		var body *ast.BlockStmt
		var unbounded bool
		switch loop := n.(type) {
		case *ast.ForStmt:
			body = loop.Body
			unbounded = loop.Cond == nil
		case *ast.RangeStmt:
			body = loop.Body
		default:
			return true
		}

		heavy := hasHeavyCall(pass, body, self)
		if !heavy && !(unbounded && hasForeignCall(pass, body, self)) {
			return true
		}
		if pollReachable(pass, body, decls) {
			return true
		}
		if wiresBudgetBefore(pass, fd, n, decls) {
			return true
		}
		what := "calls evaluation/solver work"
		if !heavy {
			what = "is unbounded"
		}
		pass.Reportf(n.Pos(), "loop %s but no budget poll (Ctx/Stop) is reachable in its body or direct callees; poll the budget or annotate //lint:budgeted", what)
		return true
	})
}

// hasHeavyCall reports whether the block calls a non-self function whose
// name looks like evaluation or solving.
func hasHeavyCall(pass *lint.Pass, body *ast.BlockStmt, self types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		if isHeavyName(calleeName(call)) && (self == nil || calleeObject(pass, call) != self) {
			found = true
			return false
		}
		return !found
	})
	return found
}

// hasForeignCall reports whether the block calls anything other than the
// enclosing function itself.
func hasForeignCall(pass *lint.Pass, body *ast.BlockStmt, self types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if self == nil || calleeObject(pass, call) != self {
				found = true
				return false
			}
		}
		return !found
	})
	return found
}

// pollReachable reports whether a budget-check call appears in the block
// or in the body of a same-package callee (one level deep).
func pollReachable(pass *lint.Pass, body *ast.BlockStmt, decls map[types.Object]*ast.FuncDecl) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		if markerRE.MatchString(calleeName(call)) {
			found = true
			return false
		}
		// One level deep: a same-package callee whose own body polls.
		if obj := calleeObject(pass, call); obj != nil {
			if callee, ok := decls[obj]; ok && hasMarkerCall(callee.Body) {
				found = true
				return false
			}
		}
		return !found
	})
	return found
}

// hasMarkerCall is the depth-0 marker scan used inside callees.
func hasMarkerCall(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && markerRE.MatchString(calleeName(call)) {
			found = true
			return false
		}
		return !found
	})
	return found
}

// wiresBudgetBefore reports whether the enclosing function configures a
// Stop/Ctx budget before the loop starts — s.Stop = opt.Stop,
// Options{Stop: ...}, or a call to a same-package helper (one level deep)
// that does so, like minones' newSolver — which means the budget is
// enforced inside whatever the loop calls.
func wiresBudgetBefore(pass *lint.Pass, fd *ast.FuncDecl, loop ast.Node, decls map[types.Object]*ast.FuncDecl) bool {
	found := false
	pos := loop.Pos()
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil || found || n.Pos() >= pos {
			return false
		}
		if wiresBudget(n) {
			found = true
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if obj := calleeObject(pass, call); obj != nil {
				if callee, ok := decls[obj]; ok {
					ast.Inspect(callee.Body, func(m ast.Node) bool {
						if m != nil && wiresBudget(m) {
							found = true
						}
						return !found
					})
					if found {
						return false
					}
				}
			}
		}
		return true
	})
	return found
}

// wiresBudget reports whether a single node assigns or sets a budget field.
func wiresBudget(n ast.Node) bool {
	switch x := n.(type) {
	case *ast.AssignStmt:
		for _, lhs := range x.Lhs {
			if sel, ok := lhs.(*ast.SelectorExpr); ok && budgetField(sel.Sel.Name) {
				return true
			}
		}
	case *ast.KeyValueExpr:
		if id, ok := x.Key.(*ast.Ident); ok && budgetField(id.Name) {
			return true
		}
	}
	return false
}

func budgetField(name string) bool {
	switch name {
	case "Stop", "Ctx", "MaxConflicts", "MaxConflictsPerCall":
		return true
	}
	return false
}

func calleeObject(pass *lint.Pass, call *ast.CallExpr) types.Object {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[f]
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[f.Sel]
	}
	return nil
}

func calleeName(call *ast.CallExpr) string {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return f.Sel.Name
	}
	return ""
}
