// Package retry is nakedretry testdata: raw sleeps and unbounded retry
// loops are diagnostics; context-aware waits modelled on the cluster
// backoff helper are not.
package retry

import (
	"context"
	"errors"
	"time"
)

// rawSleep is the canonical offence: an uncancellable wait.
func rawSleep() {
	time.Sleep(time.Second) // want `raw time.Sleep cannot be cancelled`
}

// bareAfter is the same offence spelled with a channel.
func bareAfter() {
	<-time.After(time.Second) // want `bare <-time.After is an uncancellable sleep`
}

// injectedStall is a justified exception: the wait is a test fixture's
// deliberate stall, not a retry wait.
func injectedStall(d time.Duration) {
	time.Sleep(d) //lint:nakedretry deliberate injected stall for fault testing, bounded by the rule's duration
}

// ctxSleep is the sanctioned wait shape — the cluster backoff helper's
// body: a timer raced against the context inside a select.
func ctxSleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// selectAfter is fine too: time.After as a select case next to Done.
func selectAfter(ctx context.Context) error {
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-time.After(time.Second):
		return nil
	}
}

// retryForever is the loop shape the analyzer exists for: waits between
// attempts, no attempt bound, no context exit — it hammers a dead peer
// until the process dies.
func retryForever(dial func() error, wait func()) error {
	for { // want `unbounded loop waits between iterations but has no context exit`
		if err := dial(); err == nil {
			return nil
		}
		sleepABit(wait)
	}
}

func sleepABit(wait func()) { wait() }

// sleep is a local helper whose name marks it as a wait.
func sleep(d time.Duration) { _ = d }

// pollForever waits via the local helper; still flagged — the loop has no
// way out when the caller's context is cancelled.
func pollForever(ready func() bool) {
	for { // want `unbounded loop waits between iterations but has no context exit`
		if ready() {
			return
		}
		sleep(time.Millisecond)
	}
}

// retryBudgeted is the fixed version of retryForever: the wait is
// ctx-aware and the loop polls ctx.Err, so cancellation ends it.
func retryBudgeted(ctx context.Context, dial func() error) error {
	for {
		if err := dial(); err == nil {
			return nil
		}
		if err := ctxSleep(ctx, 10*time.Millisecond); err != nil {
			return err
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
	}
}

// eventLoop never waits between iterations — select blocks on real work,
// and the Done case is the exit. Not a retry loop, not flagged.
func eventLoop(ctx context.Context, ch <-chan int) error {
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case v := <-ch:
			_ = v
		}
	}
}

// boundedRetry has a loop condition, so it cannot retry forever even
// though its wait is naked — only the sleep itself is flagged.
func boundedRetry(dial func() error) error {
	for i := 0; i < 3; i++ {
		if err := dial(); err == nil {
			return nil
		}
		time.Sleep(time.Millisecond) // want `raw time.Sleep cannot be cancelled`
	}
	return errors.New("exhausted")
}
