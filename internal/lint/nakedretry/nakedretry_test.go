package nakedretry

import (
	"testing"

	"repro/internal/lint/linttest"
)

func TestNakedRetry(t *testing.T) {
	linttest.Run(t, Analyzer, "retry")
}
