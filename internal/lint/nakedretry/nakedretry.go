// Package nakedretry flags naked retry waits: raw time.Sleep calls, bare
// <-time.After receives, and unbounded retry/wait loops with no context
// exit. The cluster tier (PR 9) centralised retry policy in one helper —
// internal/cluster's backoff.sleep, which is jittered, capped and
// context-aware — precisely because ad-hoc waits are how retry storms
// start: a raw time.Sleep cannot be cancelled when the request budget or
// the drain sequence wants the goroutine back, and an unbounded loop that
// sleeps between attempts retries forever against a dead peer. The
// sanctioned helper never trips this analyzer because it waits on a
// timer inside a select with ctx.Done; everything else either does the
// same or carries a justified suppression.
package nakedretry

import (
	"go/ast"
	"go/token"
	"strings"

	"repro/internal/lint"
)

// Analyzer is the nakedretry analyzer.
var Analyzer = &lint.Analyzer{
	Name:      "nakedretry",
	Directive: "nakedretry",
	SkipTests: true,
	Doc: `flag raw sleeps and unbounded retry loops outside the backoff helper

Retry waits must be cancellable and bounded: a raw time.Sleep (or a bare
<-time.After) ignores request budgets and drain, and an unbounded for
loop that waits between iterations with no ctx.Done/ctx.Err exit retries
forever. Route waits through internal/cluster's backoff.sleep (jittered,
capped, context-aware), give the loop a context exit, or suppress with
"//lint:nakedretry <reason>" for waits that are provably not retry waits
(e.g. deliberate injected stalls).`,
	Run: run,
}

func run(pass *lint.Pass) {
	for _, f := range pass.Files {
		// Receives that are select comm cases are the sanctioned wait
		// shape (they sit next to a ctx.Done case); collect them so the
		// bare-receive rule skips them.
		inSelect := map[ast.Expr]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			cc, ok := n.(*ast.CommClause)
			if !ok || cc.Comm == nil {
				return true
			}
			switch s := cc.Comm.(type) {
			case *ast.ExprStmt:
				inSelect[s.X] = true
			case *ast.AssignStmt:
				for _, r := range s.Rhs {
					inSelect[r] = true
				}
			}
			return true
		})

		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				if isTimePkgCall(pass, x, "Sleep") {
					pass.Reportf(x.Pos(), "raw time.Sleep cannot be cancelled by the request budget or drain; wait through cluster's backoff.sleep (ctx-aware) or select on the context")
				}
			case *ast.UnaryExpr:
				if x.Op != token.ARROW || inSelect[x] {
					return true
				}
				if call, ok := x.X.(*ast.CallExpr); ok && isTimePkgCall(pass, call, "After") {
					pass.Reportf(x.Pos(), "bare <-time.After is an uncancellable sleep; select on it together with the context's Done channel")
				}
			case *ast.ForStmt:
				if x.Cond == nil && hasWait(pass, x.Body) && !hasCtxExit(pass, x.Body) {
					pass.Reportf(x.Pos(), "unbounded loop waits between iterations but has no context exit (ctx.Done/ctx.Err); this retries forever against a dead peer — bound it or wait through cluster's backoff.sleep")
				}
			}
			return true
		})
	}
}

// isTimePkgCall reports whether call is time.<name> — resolved through the
// typechecker, so a local helper that happens to be named Sleep does not
// match, and an aliased import of package time does.
func isTimePkgCall(pass *lint.Pass, call *ast.CallExpr, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "time" && obj.Name() == name
}

// hasWait reports whether the block waits between iterations: a
// time.Sleep/time.After call, or a call to something named like a sleep
// helper (cluster's backoff.sleep and friends — any callee whose name
// starts with "sleep").
func hasWait(pass *lint.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		if isTimePkgCall(pass, call, "Sleep") || isTimePkgCall(pass, call, "After") {
			found = true
			return false
		}
		var name string
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			name = fun.Sel.Name
		case *ast.Ident:
			name = fun.Name
		}
		if strings.HasPrefix(strings.ToLower(name), "sleep") {
			found = true
			return false
		}
		return !found
	})
	return found
}

// hasCtxExit reports whether the block can leave when its context is
// cancelled: a call to a method named Done (select on ctx.Done()) or Err
// (polling ctx.Err()) anywhere in the body.
func hasCtxExit(pass *lint.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && (sel.Sel.Name == "Done" || sel.Sel.Name == "Err") {
				found = true
				return false
			}
		}
		return !found
	})
	return found
}
