package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// runSrc typechecks one source string and runs a through RunForTest.
func runSrc(t *testing.T, a *Analyzer, src string) []Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Defs:  map[*ast.Ident]types.Object{},
		Uses:  map[*ast.Ident]types.Object{},
	}
	pkg, err := (&types.Config{}).Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	return RunForTest(a, fset, []*ast.File{f}, pkg, info)
}

// flagReturns reports a diagnostic on every return statement; the tests
// below exercise the suppression machinery around it.
var flagReturns = &Analyzer{
	Name:      "flagreturns",
	Directive: "flagged",
	Doc:       "test analyzer: flags every return",
	Run: func(pass *Pass) {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if r, ok := n.(*ast.ReturnStmt); ok {
					pass.Reportf(r.Pos(), "return reported")
				}
				return true
			})
		}
	},
}

func TestDirectiveSuppresses(t *testing.T) {
	diags := runSrc(t, flagReturns, `package p
func f() int {
	//lint:flagged a good reason
	return 1
}
`)
	if len(diags) != 0 {
		t.Fatalf("expected suppression, got %v", diags)
	}
}

func TestDirectiveSameLine(t *testing.T) {
	diags := runSrc(t, flagReturns, `package p
func f() int {
	return 1 //lint:flagged a good reason
}
`)
	if len(diags) != 0 {
		t.Fatalf("expected same-line suppression, got %v", diags)
	}
}

func TestUsedDirectiveWithoutReasonIsReported(t *testing.T) {
	diags := runSrc(t, flagReturns, `package p
func f() int {
	//lint:flagged
	return 1
}
`)
	if len(diags) != 1 {
		t.Fatalf("expected exactly the needs-a-reason diagnostic, got %v", diags)
	}
	if !strings.Contains(diags[0].Message, "needs a reason") {
		t.Fatalf("unexpected message %q", diags[0].Message)
	}
	if diags[0].Pos.Line != 3 {
		t.Fatalf("diagnostic at line %d, want the directive line 3", diags[0].Pos.Line)
	}
}

func TestWrongDirectiveNameDoesNotSuppress(t *testing.T) {
	diags := runSrc(t, flagReturns, `package p
func f() int {
	//lint:ordered not this analyzer's directive
	return 1
}
`)
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "return reported") {
		t.Fatalf("expected the diagnostic to survive, got %v", diags)
	}
}

func TestDistantDirectiveDoesNotSuppress(t *testing.T) {
	diags := runSrc(t, flagReturns, `package p
//lint:flagged too far from the report line
func f() int {
	x := 1
	return x
}
`)
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "return reported") {
		t.Fatalf("expected the diagnostic to survive, got %v", diags)
	}
}
