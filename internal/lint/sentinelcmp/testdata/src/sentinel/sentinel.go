// Package sentinel is the sentinelcmp golden corpus. The flagged cases
// reproduce the PR 2 sentinel-comparison incident: the repo wraps its
// sentinels with %w (budget errors gain the context error, engine errors
// gain operator context), so identity comparison silently stops matching.
package sentinel

import (
	"errors"
	"fmt"
)

// Package-level sentinels in the repo's style.
var (
	ErrBudget       = errors.New("budget exhausted")
	ErrQueriesAgree = errors.New("queries agree")
)

func wrapped() error { return fmt.Errorf("solving: %w", ErrBudget) }

// The PR 2 bug, verbatim: == misses the wrapped sentinel.
func isBudget(err error) bool {
	return err == ErrBudget // want `== comparison with sentinel ErrBudget misses wrapped errors`
}

func notAgree(err error) bool {
	return err != ErrQueriesAgree // want `!= comparison with sentinel ErrQueriesAgree misses wrapped errors`
}

// switch err { case ErrX: } is the same identity test.
func classify(err error) string {
	switch err {
	case ErrBudget: // want `switch-case comparison with sentinel ErrBudget misses wrapped errors`
		return "budget"
	case nil:
		return "ok"
	}
	return "other"
}

// errors.Is is the required form.
func isBudgetRight(err error) bool {
	return errors.Is(err, ErrBudget)
}

// Suppressed: identity is intended on this path.
func isExactly(err error) bool {
	//lint:sentinelcmp err was assigned from the package var two lines up and is never wrapped
	return err == ErrBudget
}

// Non-sentinel comparisons are never flagged.
func sameError(a, b error) bool {
	return a == b
}
