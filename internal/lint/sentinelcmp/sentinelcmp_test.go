package sentinelcmp

import (
	"testing"

	"repro/internal/lint/linttest"
)

func TestSentinelCmp(t *testing.T) {
	linttest.Run(t, Analyzer, "sentinel")
}
