// Package sentinelcmp flags identity comparisons (== / != / switch-case)
// against package-level Err* sentinel errors. The repo wraps errors —
// core.ErrBudget arrives as fmt.Errorf("%w: %w", ErrBudget, ctxErr),
// engine.ErrRowBudget gains operator context, and so on — so identity
// comparison silently stops matching the moment anyone adds context.
// errors.Is is required.
package sentinelcmp

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint"
)

// Analyzer is the sentinelcmp analyzer.
var Analyzer = &lint.Analyzer{
	Name:      "sentinelcmp",
	Directive: "sentinelcmp",
	Doc: `flag ==/!= and switch-case comparisons against Err* sentinel errors

The repo wraps sentinel errors (core.ErrBudget, engine.ErrStaleDelta, ...)
with fmt.Errorf("%w", ...), so identity comparison misses wrapped values.
Use errors.Is(err, ErrX). Suppress with "//lint:sentinelcmp <reason>" only
where the value is known to be the sentinel itself (e.g. it was just
assigned from the package-level var in the same function).`,
	Run: run,
}

func run(pass *lint.Pass) {
	errType := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

	// isSentinel reports whether e denotes a package-level error variable
	// whose name starts with "Err".
	isSentinel := func(e ast.Expr) (string, bool) {
		var id *ast.Ident
		switch x := e.(type) {
		case *ast.Ident:
			id = x
		case *ast.SelectorExpr:
			id = x.Sel
		default:
			return "", false
		}
		obj, ok := pass.TypesInfo.Uses[id]
		if !ok {
			return "", false
		}
		v, ok := obj.(*types.Var)
		if !ok || !strings.HasPrefix(v.Name(), "Err") {
			return "", false
		}
		// Package-level: the var's scope is a package scope (its parent
		// is the universe scope).
		if v.Parent() == nil || v.Parent().Parent() != types.Universe {
			return "", false
		}
		if !types.Implements(v.Type(), errType) {
			return "", false
		}
		return name(e), true
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.BinaryExpr:
				if x.Op != token.EQL && x.Op != token.NEQ {
					return true
				}
				for _, side := range []ast.Expr{x.X, x.Y} {
					if s, ok := isSentinel(side); ok {
						pass.Reportf(x.Pos(), "%s comparison with sentinel %s misses wrapped errors; use errors.Is", x.Op, s)
						break
					}
				}
			case *ast.SwitchStmt:
				// switch err { case ErrX: } is the same identity test.
				if x.Tag == nil {
					return true
				}
				tv, ok := pass.TypesInfo.Types[x.Tag]
				if !ok || !types.Implements(tv.Type, errType) {
					return true
				}
				for _, stmt := range x.Body.List {
					cc := stmt.(*ast.CaseClause)
					for _, e := range cc.List {
						if s, ok := isSentinel(e); ok {
							pass.Reportf(e.Pos(), "switch-case comparison with sentinel %s misses wrapped errors; use errors.Is", s)
						}
					}
				}
			}
			return true
		})
	}
}

func name(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return name(x.X) + "." + x.Sel.Name
	}
	return "?"
}
