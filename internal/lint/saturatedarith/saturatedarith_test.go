package saturatedarith

import (
	"testing"

	"repro/internal/lint/linttest"
)

func TestSaturatedArith(t *testing.T) {
	linttest.Run(t, Analyzer, "satarith")
}
