// Package saturatedarith flags raw +, *, += and *= on counting-annotation
// values — any value of a defined integer type named Count (the engine's
// counting-semiring payload, engine.Count). PR 2's overflow incident is
// the motivating bug class: a 2^65-derivation cross product wrapped an
// int64 count to 0 and pruned a live tuple from a provenance support.
// Counts must go through the semiring's saturating helpers
// (CountSemiring.Plus/Times) or an equivalently guarded expression.
//
// A function whose body compares against a math.MaxInt*/MaxUint* bound is
// treated as a saturating helper itself and may use raw arithmetic — that
// is exactly the guard the helpers use, and deleting the guard makes the
// raw op visible to the analyzer again.
package saturatedarith

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint"
)

// Analyzer is the saturatedarith analyzer.
var Analyzer = &lint.Analyzer{
	Name:      "saturatedarith",
	Directive: "saturated",
	Doc: `flag raw +/*/+=/*= on counting-annotation values (engine.Count)

Derivation counts saturate at math.MaxInt64 (a wrapped count of 0 prunes a
live tuple from the support). Use CountSemiring.Plus/Times, or guard the
raw op against math.MaxInt64 in the same function, or suppress with
"//lint:saturated <reason>" where overflow is impossible by construction.`,
	Run: run,
}

func run(pass *lint.Pass) {
	isCount := func(e ast.Expr) bool {
		t := pass.TypeOf(e)
		return t != nil && isCountType(t)
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if saturating(fd.Body) {
				continue // the guard itself lives here; raw ops are the point
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.BinaryExpr:
					if x.Op != token.ADD && x.Op != token.MUL {
						return true
					}
					if isCount(x.X) || isCount(x.Y) {
						pass.Reportf(x.Pos(), "raw %s on counting value can wrap (PR 2 overflow class); use the saturating semiring helpers", x.Op)
					}
				case *ast.AssignStmt:
					if x.Tok != token.ADD_ASSIGN && x.Tok != token.MUL_ASSIGN {
						return true
					}
					for _, lhs := range x.Lhs {
						if isCount(lhs) {
							pass.Reportf(x.Pos(), "raw %s on counting value can wrap (PR 2 overflow class); use the saturating semiring helpers", x.Tok)
						}
					}
				}
				return true
			})
		}
	}
}

// saturating reports whether the function body contains a comparison
// against a math.MaxInt*/MaxUint* bound — the overflow guard that makes
// raw count arithmetic safe.
func saturating(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch be.Op {
		case token.GTR, token.LSS, token.GEQ, token.LEQ:
		default:
			return true
		}
		for _, side := range []ast.Expr{be.X, be.Y} {
			if mentionsMaxBound(side) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// mentionsMaxBound reports whether the expression mentions a selector or
// identifier named MaxInt*/MaxUint* (math.MaxInt64, local maxCount, ...).
func mentionsMaxBound(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		var name string
		switch x := n.(type) {
		case *ast.SelectorExpr:
			name = x.Sel.Name
		case *ast.Ident:
			name = x.Name
		default:
			return true
		}
		if strings.HasPrefix(name, "MaxInt") || strings.HasPrefix(name, "MaxUint") {
			found = true
			return false
		}
		return true
	})
	return found
}

// isCountType reports whether t (or the element behind one level of
// pointer) is a defined integer type named Count — the counting-semiring
// payload type.
func isCountType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Count" {
		return false
	}
	b, ok := named.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}
