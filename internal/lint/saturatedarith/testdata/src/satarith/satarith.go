// Package satarith is the saturatedarith golden corpus. The flagged cases
// reproduce the PR 2 overflow incident: a deep cross product wrapped an
// int64 derivation count to zero, which pruned a live tuple from a
// provenance support.
package satarith

import "math"

// Count is a derivation count (the engine's counting-semiring payload).
type Count int64

// The PR 2 overflow class, verbatim: plain + and × on counts wrap.
func plus(a, b Count) Count {
	return a + b // want `raw \+ on counting value can wrap`
}

func times(a, b Count) Count {
	return a * b // want `raw \* on counting value can wrap`
}

func accumulate(counts []Count) Count {
	var total Count
	for _, c := range counts {
		total += c // want `raw \+= on counting value can wrap`
	}
	return total
}

// satPlus guards against math.MaxInt64, which marks the whole function as
// a saturating helper: its raw arithmetic is the implementation of the
// guard, not a violation.
func satPlus(a, b Count) Count {
	if a > math.MaxInt64-b {
		return math.MaxInt64
	}
	return a + b
}

// Suppressed: exact ring arithmetic justified at the site.
func exactDelta(a, b Count) Count {
	//lint:saturated delta arithmetic is exact; callers reject saturated inputs first
	return a + b
}

// Plain integers that are not the Count type are never flagged.
func plainInts(a, b int64) int64 {
	return a + b
}

// Comparisons and subtraction on counts are fine: only + and * can
// silently wrap a nonnegative count past the ceiling.
func consume(a, b Count) Count {
	if a == b {
		return 0
	}
	return a - b
}
