// Package linttest is a stdlib-only analogue of
// golang.org/x/tools/go/analysis/analysistest: it typechecks a testdata
// package, runs one analyzer over it, and compares the diagnostics
// against `// want "regexp"` comments in the sources.
//
// Layout follows analysistest: Run(t, a, "foo") analyzes every .go file
// under <analyzer package>/testdata/src/foo as one package. Testdata
// packages may import only the standard library (they are typechecked
// with the source importer, which has no module awareness).
//
// Expectations are written at the end of the line the diagnostic is
// reported on:
//
//	for k := range m { // want `non-deterministic map iteration`
//
// Each want regexp must match exactly one diagnostic on its line and
// every diagnostic must be matched by a want.
package linttest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint"
)

var wantRE = regexp.MustCompile("// want (`[^`]*`|\"[^\"]*\")")

// Run analyzes each named testdata package with a and checks the
// diagnostics against the // want expectations in its sources.
func Run(t *testing.T, a *lint.Analyzer, pkgs ...string) {
	t.Helper()
	for _, pkg := range pkgs {
		runOne(t, a, filepath.Join("testdata", "src", pkg))
	}
}

func runOne(t *testing.T, a *lint.Analyzer, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading %s: %v", dir, err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		name := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parsing %s: %v", name, err)
		}
		files = append(files, f)
		names = append(names, name)
	}
	if len(files) == 0 {
		t.Fatalf("no .go files in %s", dir)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	tcfg := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := tcfg.Check(files[0].Name.Name, fset, files, info)
	if err != nil {
		t.Fatalf("typechecking %s: %v", dir, err)
	}

	diags := lint.RunForTest(a, fset, files, pkg, info)

	// Collect want expectations: file:line -> regexps.
	type key struct {
		file string
		line int
	}
	wants := map[key][]*regexp.Regexp{}
	for _, name := range names {
		src, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		for i, lineText := range strings.Split(string(src), "\n") {
			for _, m := range wantRE.FindAllStringSubmatch(lineText, -1) {
				pat := m[1][1 : len(m[1])-1] // strip quotes/backquotes
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", name, i+1, pat, err)
				}
				k := key{name, i + 1}
				wants[k] = append(wants[k], re)
			}
		}
	}

	// Match diagnostics against wants, 1:1 per line.
	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		matched := -1
		for i, re := range wants[k] {
			if re.MatchString(d.Message) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("%s: unexpected diagnostic: %s", d.Pos, d.Message)
			continue
		}
		wants[k] = append(wants[k][:matched], wants[k][matched+1:]...)
		if len(wants[k]) == 0 {
			delete(wants, k)
		}
	}
	var leftover []string
	for k, res := range wants {
		for _, re := range res {
			leftover = append(leftover, k.file+":"+strconv.Itoa(k.line)+": "+re.String())
		}
	}
	sort.Strings(leftover)
	for _, l := range leftover {
		t.Errorf("%s: expected diagnostic not reported", l)
	}
}
