package lint

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"runtime"
	"strings"
)

// vetConfig is the JSON configuration cmd/go writes for each package when
// it invokes a -vettool. Field names and semantics follow
// cmd/go/internal/work (and x/tools' unitchecker, which consumes the same
// file).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	GoVersion                 string
	SucceedOnTypecheckFailure bool
}

// Main implements the cmd/go vet tool protocol for a set of analyzers:
//
//	ratestlint -V=full           print a version/fingerprint line (cache key)
//	ratestlint -flags            print the supported flags as JSON
//	ratestlint [-json] foo.cfg   analyze the package described by foo.cfg
//	ratestlint ./...             convenience: re-exec via go vet -vettool
//
// In cfg mode it parses and typechecks the package (using the compiler
// export data cmd/go recorded in the cfg), runs the analyzers, prints
// diagnostics to stderr as "file:line:col: analyzer: message" lines (or a
// JSON object on stdout with -json), and exits 2 if any were reported —
// the contract go vet expects.
func Main(analyzers ...*Analyzer) {
	// cmd/go probes the tool's identity before any package run.
	if len(os.Args) == 2 && strings.HasPrefix(os.Args[1], "-V") {
		printVersion()
		return
	}

	fs := flag.NewFlagSet(progName(), flag.ExitOnError)
	jsonFlag := fs.Bool("json", false, "emit diagnostics as JSON on stdout")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: %s [-json] package.cfg\n       %s ./...\n\nAnalyzers:\n", progName(), progName())
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-16s %s\n", a.Name, strings.SplitN(a.Doc, "\n", 2)[0])
		}
	}

	// cmd/go asks for the flag inventory once per vet invocation.
	if len(os.Args) == 2 && os.Args[1] == "-flags" {
		printFlags(fs)
		return
	}

	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(1)
	}
	args := fs.Args()
	if len(args) != 1 {
		fs.Usage()
		os.Exit(1)
	}

	// Convenience mode: "ratestlint ./..." re-execs through go vet with
	// itself as the vettool, so local runs use the exact CI code path.
	if !strings.HasSuffix(args[0], ".cfg") {
		os.Exit(execGoVet(args))
	}

	diags, err := runConfig(args[0], analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progName(), err)
		os.Exit(1)
	}
	if *jsonFlag {
		emitJSON(diags)
		return // JSON mode always exits 0, like unitchecker
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", d.Pos, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		os.Exit(2)
	}
}

// runConfig analyzes the single package described by a vet cfg file.
func runConfig(cfgPath string, analyzers []*Analyzer) ([]Diagnostic, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("parsing %s: %v", cfgPath, err)
	}

	// cmd/go expects the output file to exist even for fact-only runs;
	// this suite computes no cross-package facts, so it is always empty.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0666); err != nil {
			return nil, err
		}
	}
	if cfg.VetxOnly {
		return nil, nil // dependency pass: facts only, no diagnostics
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil, nil
			}
			return nil, err
		}
		files = append(files, f)
	}

	// Resolve imports through the compiler export data cmd/go recorded:
	// source import path -> canonical path (ImportMap) -> export file
	// (PackageFile). The unified export format is transitively closed, so
	// direct imports' files suffice.
	lookup := func(path string) (io.ReadCloser, error) {
		if canon, ok := cfg.ImportMap[path]; ok {
			path = canon
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	tcfg := types.Config{
		Importer:  importer.ForCompiler(fset, cfg.Compiler, lookup),
		GoVersion: strings.TrimSuffix(cfg.GoVersion, "-fips140"), // tolerate experiment suffixes
		Sizes:     types.SizesFor(cfg.Compiler, goarch()),
		Error:     func(error) {}, // collect all errors via the returned err
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	pkg, err := tcfg.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, nil
		}
		return nil, fmt.Errorf("typechecking %s: %v", cfg.ImportPath, err)
	}
	return runAnalyzers(analyzers, fset, files, pkg, info), nil
}

// execGoVet re-runs the current binary through go vet -vettool over the
// given package patterns and returns the exit code to propagate.
func execGoVet(patterns []string) int {
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progName(), err)
		return 1
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + self}, patterns...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "%s: %v\n", progName(), err)
		return 1
	}
	return 0
}

// printVersion prints the "-V=full" line cmd/go uses as a cache key. The
// fingerprint hashes the executable so a rebuilt tool invalidates cached
// vet results.
func printVersion() {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			_, _ = io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("%s version devel buildID=%x\n", progName(), h.Sum(nil)[:12])
}

// printFlags prints the tool's flags in the JSON shape cmd/go parses.
func printFlags(fs *flag.FlagSet) {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var out []jsonFlag
	fs.VisitAll(func(f *flag.Flag) {
		b, ok := f.Value.(interface{ IsBoolFlag() bool })
		out = append(out, jsonFlag{Name: f.Name, Bool: ok && b.IsBoolFlag(), Usage: f.Usage})
	})
	data, _ := json.Marshal(out)
	os.Stdout.Write(data)
	fmt.Println()
}

// emitJSON prints diagnostics in the go vet -json page shape:
// {"pkgid": {"analyzer": [{posn, message}, ...]}}.
func emitJSON(diags []Diagnostic) {
	type jsonDiag struct {
		Posn    string `json:"posn"`
		Message string `json:"message"`
	}
	byAnalyzer := map[string][]jsonDiag{}
	for _, d := range diags {
		byAnalyzer[d.Analyzer] = append(byAnalyzer[d.Analyzer], jsonDiag{Posn: d.Pos.String(), Message: d.Message})
	}
	data, _ := json.MarshalIndent(byAnalyzer, "", "\t")
	os.Stdout.Write(data)
	fmt.Println()
}

func progName() string {
	return "ratestlint"
}

func goarch() string {
	if a := os.Getenv("GOARCH"); a != "" {
		return a
	}
	return runtime.GOARCH
}
