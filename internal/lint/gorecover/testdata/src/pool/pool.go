// Package pool is gorecover testdata modelled on the real internal/pool:
// the spawn helper's own go statement is suppressed with a reason; every
// other raw go statement is a diagnostic.
package pool

import "sync"

// Go is the recover-wrapping spawn helper; its raw go statement is the one
// legitimate use and carries the suppression.
func Go(fn func(), onPanic func(any)) {
	//lint:gorecover the spawn helper itself; the deferred recover below is the wrapper everything else routes through
	go func() {
		defer func() {
			if r := recover(); r != nil && onPanic != nil {
				onPanic(r)
			}
		}()
		fn()
	}()
}

// fanOut routes through the helper: no diagnostic.
func fanOut(n int, fn func(int)) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		i := i
		Go(func() { defer wg.Done(); fn(i) }, nil)
	}
	wg.Wait()
}

// leak spawns raw goroutines: both forms are flagged even when the body
// looks harmless — "cannot panic" is a suppression reason, not a static
// fact.
func leak(ch chan int) {
	go func() { ch <- 1 }() // want `raw go statement in a panic-isolated package`
	go drain(ch)            // want `raw go statement in a panic-isolated package`
}

func drain(ch chan int) {
	for range ch {
	}
}

// inlineRecover still flags: recovery must live in the shared helper, not
// be re-derived (and subtly mis-scoped) at each spawn site.
func inlineRecover(fn func()) {
	go func() { // want `raw go statement in a panic-isolated package`
		defer func() { recover() }()
		fn()
	}()
}
