// Package other is outside the gorecover scope (not server or pool): raw
// go statements are someone else's problem here.
package other

func spawn(fn func()) {
	go fn()
}
