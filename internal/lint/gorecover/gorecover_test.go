package gorecover

import (
	"testing"

	"repro/internal/lint/linttest"
)

func TestGoRecover(t *testing.T) {
	linttest.Run(t, Analyzer, "pool", "other")
}
