// Package gorecover flags raw go statements in the serving, pool and
// cluster packages (internal/server, internal/pool, internal/cluster).
// Those packages are the process's panic-isolation boundary: a goroutine spawned outside the
// recover-wrapping helper (pool.Go) that panics kills the whole server —
// caches, in-flight requests and all — which is exactly the failure mode
// the fault-tolerance work removed. Every goroutine there must route
// through pool.Go (or an http.Handler, which net/http recovers per
// connection); the lone raw go statement inside pool.Go itself carries the
// suppression.
package gorecover

import (
	"go/ast"
	"path"

	"repro/internal/lint"
)

// Analyzer is the gorecover analyzer.
var Analyzer = &lint.Analyzer{
	Name:      "gorecover",
	Directive: "gorecover",
	SkipTests: true,
	Doc: `flag raw go statements in the panic-isolated packages

internal/server, internal/pool and internal/cluster promise that a panic anywhere in a
request becomes a structured error, never a process crash. A raw go
statement breaks that promise: an unrecovered panic on any goroutine is
fatal to the process. Spawn through pool.Go (which recovers and converts
panics to *pool.PanicError) or suppress with "//lint:gorecover <reason>"
when the goroutine body provably cannot panic.`,
	Run: run,
}

// scopePkgs are the package basenames the analyzer applies to: the
// packages that promise panic isolation.
var scopePkgs = map[string]bool{
	"server":  true,
	"pool":    true,
	"cluster": true,
}

func run(pass *lint.Pass) {
	if !scopePkgs[path.Base(pass.Pkg.Path())] {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				pass.Reportf(g.Pos(), "raw go statement in a panic-isolated package; spawn through pool.Go so a panic becomes a *pool.PanicError instead of killing the process")
			}
			return true
		})
	}
}
