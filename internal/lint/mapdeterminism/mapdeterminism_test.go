package mapdeterminism

import (
	"testing"

	"repro/internal/lint/linttest"
)

func TestMapDeterminism(t *testing.T) {
	linttest.Run(t, Analyzer, "mapdet")
}
