// Package mapdeterminism flags range-over-map loops whose iteration order
// leaks into an order-sensitive result: appending to a slice that outlives
// the loop, concatenating onto a string, writing into a strings.Builder /
// bytes.Buffer, or returning the iteration variable itself. PR 2's
// boolexpr.BaseVars and Counterexample.IDs incidents are the motivating
// bug class: map-order clause emission made witness search nondeterministic
// run-to-run, which breaks the paper's determinism guarantee and any
// reenactment-style audit of grading decisions.
//
// A loop is not flagged when the accumulated value is demonstrably
// re-ordered afterwards — a later statement in the same block passes it to
// a sort (sort.*, slices.Sort*, or any callee whose name contains "Sort").
// Order-insensitive sinks (maps, numeric sums, min/max tracking) are never
// flagged. Everything else needs "//lint:ordered <reason>".
package mapdeterminism

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint"
)

// Analyzer is the mapdeterminism analyzer.
var Analyzer = &lint.Analyzer{
	Name:      "mapdeterminism",
	Directive: "ordered",
	Doc: `flag map iteration whose order escapes into slices, strings or returns

Go randomizes map iteration order; accumulating it into an ordered result
makes output nondeterministic run-to-run (the PR 2 boolexpr.BaseVars bug).
Sort the result afterwards, emit into an order-insensitive sink, or
suppress with "//lint:ordered <reason>".`,
	Run: run,
}

func run(pass *lint.Pass) {
	for _, f := range pass.Files {
		// Walk every block so a range statement can see its following
		// statements (for the sorted-afterwards exemption).
		ast.Inspect(f, func(n ast.Node) bool {
			block, ok := n.(*ast.BlockStmt)
			if !ok {
				return true
			}
			for i, stmt := range block.List {
				rs, ok := stmt.(*ast.RangeStmt)
				if !ok {
					continue
				}
				checkRange(pass, rs, block.List[i+1:])
			}
			return true
		})
	}
}

// checkRange analyzes one range statement; rest is the statement tail of
// the enclosing block after the loop.
func checkRange(pass *lint.Pass, rs *ast.RangeStmt, rest []ast.Stmt) {
	t := pass.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}

	iterVars := map[types.Object]bool{}
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.TypesInfo.Defs[id]; obj != nil {
				iterVars[obj] = true
			} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
				iterVars[obj] = true // k, v = range (assignment form)
			}
		}
	}

	// outer reports whether obj is declared outside the range statement.
	outer := func(obj types.Object) bool {
		return obj != nil && (obj.Pos() < rs.Pos() || obj.Pos() > rs.End())
	}

	reported := false
	// report emits the diagnostic (once per loop) unless a later
	// statement in the same block feeds obj into a sort.
	report := func(what string, obj types.Object) {
		if reported || sortedAfter(pass, obj, rest) {
			return
		}
		reported = true
		pass.Reportf(rs.For, "map iteration "+what+" without sorting afterwards; iteration order is nondeterministic", obj.Name())
	}

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if reported {
			return false
		}
		switch x := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range x.Lhs {
				obj := lhsObject(pass, lhs)
				if !outer(obj) {
					continue
				}
				if i < len(x.Rhs) && isAppendTo(pass, x.Rhs[i], obj) {
					report("appends to %q", obj)
					return true
				}
				if x.Tok == token.ADD_ASSIGN && isStringType(pass.TypeOf(lhs)) {
					report("concatenates onto string %q", obj)
					return true
				}
			}
		case *ast.CallExpr:
			// builder.WriteString(...) / fmt.Fprintf(&buf, ...) on an
			// outer strings.Builder or bytes.Buffer.
			if obj := writerTarget(pass, x); outer(obj) {
				report("writes into %q", obj)
				return true
			}
		case *ast.ReturnStmt:
			for _, res := range x.Results {
				used := false
				ast.Inspect(res, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok && iterVars[pass.TypesInfo.Uses[id]] {
						used = true
						return false
					}
					return true
				})
				if used && !reported {
					reported = true
					pass.Reportf(rs.For, "return inside map iteration yields an arbitrary element; iteration order is nondeterministic")
					return false
				}
			}
		}
		return true
	})
}

// sortedAfter reports whether any statement after the loop calls a
// sort-like function with obj among (or inside) its arguments.
func sortedAfter(pass *lint.Pass, obj types.Object, rest []ast.Stmt) bool {
	found := false
	for _, stmt := range rest {
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !isSortCall(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				ast.Inspect(arg, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
						found = true
						return false
					}
					return true
				})
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// lhsObject resolves an assignment target to the variable being mutated:
// the ident itself, or the base variable of a selector/index chain.
func lhsObject(pass *lint.Pass, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			if obj := pass.TypesInfo.Uses[x]; obj != nil {
				return obj
			}
			return pass.TypesInfo.Defs[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			// m[k] = v: writing through an index. A map write is
			// order-insensitive; a slice write at a loop-derived index is
			// not, but the repo has no such idiom — treat as insensitive.
			return nil
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// isAppendTo reports whether rhs is append(dst-or-anything...) growing obj.
func isAppendTo(pass *lint.Pass, rhs ast.Expr, obj types.Object) bool {
	call, ok := rhs.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_ = obj
	return true
}

// writerTarget returns the variable behind an ordered write call —
// x.WriteString/WriteByte/WriteRune/Write/WriteTo on a strings.Builder or
// bytes.Buffer, or fmt.Fprint*(x, ...) — or nil.
func writerTarget(pass *lint.Pass, call *ast.CallExpr) types.Object {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if strings.HasPrefix(sel.Sel.Name, "Write") && isBuilderType(pass.TypeOf(sel.X)) {
			return lhsObject(pass, sel.X)
		}
		if strings.HasPrefix(sel.Sel.Name, "Fprint") && len(call.Args) > 0 {
			arg := call.Args[0]
			if u, ok := arg.(*ast.UnaryExpr); ok && u.Op == token.AND {
				arg = u.X
			}
			if isBuilderType(pass.TypeOf(arg)) {
				return lhsObject(pass, arg)
			}
		}
	}
	return nil
}

func isBuilderType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() + "." + obj.Name() {
	case "strings.Builder", "bytes.Buffer":
		return true
	}
	return false
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isSortCall reports whether the call re-orders its argument: anything in
// package sort or slices, or a callee whose name mentions Sort/sort.
func isSortCall(pass *lint.Pass, call *ast.CallExpr) bool {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return strings.Contains(strings.ToLower(f.Name), "sort")
	case *ast.SelectorExpr:
		if x, ok := f.X.(*ast.Ident); ok {
			if pn, ok := pass.TypesInfo.Uses[x].(*types.PkgName); ok {
				switch pn.Imported().Path() {
				case "sort", "slices":
					return true
				}
			}
		}
		return strings.Contains(strings.ToLower(f.Sel.Name), "sort")
	}
	return false
}
