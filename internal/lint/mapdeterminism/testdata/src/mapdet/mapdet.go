// Package mapdet is the mapdeterminism golden corpus. The flagged cases
// reproduce the PR 2 boolexpr.BaseVars incident: SAT variables collected
// in map order fed the solver's branching heuristics, so witness search
// was nondeterministic run-to-run.
package mapdet

import (
	"fmt"
	"sort"
	"strings"
)

// CNFBuilder mirrors boolexpr.CNFBuilder's id → SAT-variable map.
type CNFBuilder struct {
	varOf map[int]int
}

// BaseVars is the PR 2 bug, verbatim (before the fix added sort.Ints).
func (b *CNFBuilder) BaseVars() []int {
	out := make([]int, 0, len(b.varOf))
	for _, v := range b.varOf { // want `map iteration appends to "out" without sorting afterwards`
		out = append(out, v)
	}
	return out
}

// BaseVarsSorted is the PR 2 fix: sorting afterwards exempts the loop.
func (b *CNFBuilder) BaseVarsSorted() []int {
	out := make([]int, 0, len(b.varOf))
	for _, v := range b.varOf {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

func concatKeys(m map[string]string) string {
	s := ""
	for k := range m { // want `map iteration concatenates onto string "s" without sorting afterwards`
		s += k
	}
	return s
}

func describe(m map[string]int) string {
	var sb strings.Builder
	for k, v := range m { // want `map iteration writes into "sb" without sorting afterwards`
		fmt.Fprintf(&sb, "%s=%d;", k, v)
	}
	return sb.String()
}

func anyKey(m map[string]bool) string {
	for k := range m { // want `return inside map iteration yields an arbitrary element`
		return k
	}
	return ""
}

// Suppressed: the consumer treats the result as an unordered set.
func shardNames(m map[string]int) []string {
	var out []string
	//lint:ordered consumer treats shard names as an unordered set
	for k := range m {
		out = append(out, k)
	}
	return out
}

// Order-insensitive sinks are never flagged: commutative accumulation.
func sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Order-insensitive sinks are never flagged: map-to-map transfer.
func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// Sorting via sort.Slice (a different sort.* entry point) also exempts.
func pairs(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
