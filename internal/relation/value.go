// Package relation provides the data model underlying the RATest
// reproduction: typed values, schemas, tuples with stable identifiers,
// relations, database instances, and integrity constraints.
//
// The model follows Section 2 of Miao, Roy, and Yang, "Explaining Wrong
// Queries Using Small Examples" (SIGMOD 2019): database instances are sets
// of relations whose tuples carry unique identifiers (t1, t2, ...) used to
// annotate provenance, and counterexamples are subinstances selected by
// identifier.
package relation

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind enumerates the value types supported by the engine.
type Kind uint8

// Supported value kinds.
const (
	KindNull Kind = iota
	KindBool
	KindInt
	KindFloat
	KindString
)

// String returns the lowercase name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindBool:
		return "bool"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is an immutable scalar database value. The zero Value is NULL.
// Value is comparable and can be used as a map key.
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
}

// Null returns the NULL value.
func Null() Value { return Value{} }

// Bool returns a boolean value.
func Bool(b bool) Value {
	v := Value{kind: KindBool}
	if b {
		v.i = 1
	}
	return v
}

// Int returns a 64-bit integer value.
func Int(i int64) Value { return Value{kind: KindInt, i: i} }

// Float returns a 64-bit floating point value.
func Float(f float64) Value { return Value{kind: KindFloat, f: f} }

// String returns a string value.
func String(s string) Value { return Value{kind: KindString, s: s} }

// Kind reports the kind of the value.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// AsBool returns the boolean payload; it panics if the value is not a bool.
func (v Value) AsBool() bool {
	if v.kind != KindBool {
		panic(fmt.Sprintf("relation: AsBool on %s value", v.kind))
	}
	return v.i != 0
}

// AsInt returns the integer payload; it panics if the value is not an int.
func (v Value) AsInt() int64 {
	if v.kind != KindInt {
		panic(fmt.Sprintf("relation: AsInt on %s value", v.kind))
	}
	return v.i
}

// AsFloat returns the value as float64, converting integers. It panics for
// non-numeric values.
func (v Value) AsFloat() float64 {
	switch v.kind {
	case KindInt:
		return float64(v.i)
	case KindFloat:
		return v.f
	default:
		panic(fmt.Sprintf("relation: AsFloat on %s value", v.kind))
	}
}

// AsString returns the string payload; it panics if the value is not a string.
func (v Value) AsString() string {
	if v.kind != KindString {
		panic(fmt.Sprintf("relation: AsString on %s value", v.kind))
	}
	return v.s
}

// IsNumeric reports whether the value is an int or a float.
func (v Value) IsNumeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// String renders the value for display.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindBool:
		if v.i != 0 {
			return "true"
		}
		return "false"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return v.s
	default:
		return "?"
	}
}

// Quote renders the value as a literal parseable by the RA parser.
func (v Value) Quote() string {
	if v.kind == KindString {
		return "'" + strings.ReplaceAll(v.s, "'", "''") + "'"
	}
	return v.String()
}

// Equal reports SQL-style equality: NULL is not equal to anything (including
// NULL), and numeric values compare across int/float.
func (v Value) Equal(o Value) bool {
	if v.kind == KindNull || o.kind == KindNull {
		return false
	}
	if v.IsNumeric() && o.IsNumeric() {
		if v.kind == KindInt && o.kind == KindInt {
			return v.i == o.i
		}
		return v.AsFloat() == o.AsFloat()
	}
	if v.kind != o.kind {
		return false
	}
	switch v.kind {
	case KindBool:
		return v.i == o.i
	case KindString:
		return v.s == o.s
	}
	return false
}

// Identical reports exact equality including NULL==NULL and kind equality.
// It is the notion of equality used for set-semantics deduplication.
func (v Value) Identical(o Value) bool { return v == o }

// Compare orders two values. It returns (cmp, true) where cmp is -1, 0 or 1,
// or (0, false) when the values are incomparable (NULLs or mixed
// non-numeric kinds).
func (v Value) Compare(o Value) (int, bool) {
	if v.kind == KindNull || o.kind == KindNull {
		return 0, false
	}
	if v.IsNumeric() && o.IsNumeric() {
		if v.kind == KindInt && o.kind == KindInt {
			switch {
			case v.i < o.i:
				return -1, true
			case v.i > o.i:
				return 1, true
			}
			return 0, true
		}
		a, b := v.AsFloat(), o.AsFloat()
		switch {
		case a < b:
			return -1, true
		case a > b:
			return 1, true
		}
		return 0, true
	}
	if v.kind != o.kind {
		return 0, false
	}
	switch v.kind {
	case KindString:
		return strings.Compare(v.s, o.s), true
	case KindBool:
		switch {
		case v.i < o.i:
			return -1, true
		case v.i > o.i:
			return 1, true
		}
		return 0, true
	}
	return 0, false
}

// SortKey orders values deterministically for canonicalization: NULLs first,
// then by kind, then by payload. Unlike Compare it is a total order.
func (v Value) SortKey(o Value) int {
	if v.kind != o.kind {
		if v.IsNumeric() && o.IsNumeric() {
			a, b := v.AsFloat(), o.AsFloat()
			switch {
			case a < b:
				return -1
			case a > b:
				return 1
			}
			if v.kind < o.kind {
				return -1
			}
			return 1
		}
		if v.kind < o.kind {
			return -1
		}
		return 1
	}
	if c, ok := v.Compare(o); ok {
		return c
	}
	return 0
}

// Add returns the numeric sum of two values, preserving int when both are int.
func Add(a, b Value) (Value, error) { return arith(a, b, "+") }

// Sub returns the numeric difference of two values.
func Sub(a, b Value) (Value, error) { return arith(a, b, "-") }

// Mul returns the numeric product of two values.
func Mul(a, b Value) (Value, error) { return arith(a, b, "*") }

// Div returns the numeric quotient of two values; division is always
// performed in floating point, and division by zero is an error.
func Div(a, b Value) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return Null(), nil
	}
	if !a.IsNumeric() || !b.IsNumeric() {
		return Null(), fmt.Errorf("relation: cannot divide %s by %s", a.kind, b.kind)
	}
	d := b.AsFloat()
	if d == 0 {
		return Null(), fmt.Errorf("relation: division by zero")
	}
	return Float(a.AsFloat() / d), nil
}

func arith(a, b Value, op string) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return Null(), nil
	}
	if !a.IsNumeric() || !b.IsNumeric() {
		return Null(), fmt.Errorf("relation: cannot apply %q to %s and %s", op, a.kind, b.kind)
	}
	if a.kind == KindInt && b.kind == KindInt {
		switch op {
		case "+":
			return Int(a.i + b.i), nil
		case "-":
			return Int(a.i - b.i), nil
		case "*":
			return Int(a.i * b.i), nil
		}
	}
	x, y := a.AsFloat(), b.AsFloat()
	switch op {
	case "+":
		return Float(x + y), nil
	case "-":
		return Float(x - y), nil
	case "*":
		return Float(x * y), nil
	}
	return Null(), fmt.Errorf("relation: unknown operator %q", op)
}

// ParseValue parses a literal: NULL, true/false, integer, float, or a
// single-quoted string. Unquoted non-numeric text is treated as a string.
func ParseValue(s string) Value {
	t := strings.TrimSpace(s)
	switch strings.ToUpper(t) {
	case "NULL", "":
		return Null()
	case "TRUE":
		return Bool(true)
	case "FALSE":
		return Bool(false)
	}
	if len(t) >= 2 && t[0] == '\'' && t[len(t)-1] == '\'' {
		return String(strings.ReplaceAll(t[1:len(t)-1], "''", "'"))
	}
	if i, err := strconv.ParseInt(t, 10, 64); err == nil {
		return Int(i)
	}
	if f, err := strconv.ParseFloat(t, 64); err == nil && !math.IsNaN(f) {
		return Float(f)
	}
	return String(t)
}
