package relation

import (
	"fmt"
	"sort"
	"strings"
)

// Relation is a named table: a schema plus an ordered list of tuples. Base
// relations stored in a Database also carry per-tuple identifiers.
type Relation struct {
	Name   string
	Schema Schema
	Tuples []Tuple
	// IDs holds the database-wide identifier of each tuple; it is parallel
	// to Tuples. Empty for derived (query-result) relations.
	IDs []TupleID
}

// NewRelation creates an empty relation with the given name and schema.
func NewRelation(name string, schema Schema) *Relation {
	return &Relation{Name: name, Schema: schema}
}

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.Tuples) }

// Append adds a tuple without an identifier (derived relation use).
func (r *Relation) Append(t Tuple) { r.Tuples = append(r.Tuples, t) }

// AppendWithID adds a tuple carrying a base identifier.
func (r *Relation) AppendWithID(t Tuple, id TupleID) {
	r.Tuples = append(r.Tuples, t)
	r.IDs = append(r.IDs, id)
}

// ID returns the identifier of tuple i, or InvalidTupleID for derived
// relations.
func (r *Relation) ID(i int) TupleID {
	if i < len(r.IDs) {
		return r.IDs[i]
	}
	return InvalidTupleID
}

// Contains reports whether the relation contains a tuple identical to t.
func (r *Relation) Contains(t Tuple) bool {
	for _, u := range r.Tuples {
		if u.Identical(t) {
			return true
		}
	}
	return false
}

// Dedup returns a copy of the relation with duplicate tuples removed,
// preserving first-occurrence order. Identifier of the first occurrence is
// kept when present.
func (r *Relation) Dedup() *Relation {
	out := NewRelation(r.Name, r.Schema)
	seen := make(map[string]bool, len(r.Tuples))
	for i, t := range r.Tuples {
		k := t.Key()
		if seen[k] {
			continue
		}
		seen[k] = true
		if len(r.IDs) > 0 {
			out.AppendWithID(t, r.IDs[i])
		} else {
			out.Append(t)
		}
	}
	return out
}

// SetEqual reports whether two relations contain the same set of tuples
// (ignoring order and multiplicity).
func (r *Relation) SetEqual(o *Relation) bool {
	a := make(map[string]bool, len(r.Tuples))
	for _, t := range r.Tuples {
		a[t.Key()] = true
	}
	b := make(map[string]bool, len(o.Tuples))
	for _, t := range o.Tuples {
		b[t.Key()] = true
	}
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// SetDiff returns the tuples of r not present in o (set semantics, deduped).
func (r *Relation) SetDiff(o *Relation) *Relation {
	other := make(map[string]bool, len(o.Tuples))
	for _, t := range o.Tuples {
		other[t.Key()] = true
	}
	out := NewRelation(r.Name, r.Schema)
	seen := make(map[string]bool)
	for _, t := range r.Tuples {
		k := t.Key()
		if other[k] || seen[k] {
			continue
		}
		seen[k] = true
		out.Append(t)
	}
	return out
}

// Sorted returns a copy with tuples in canonical order (for deterministic
// display and testing).
func (r *Relation) Sorted() *Relation {
	out := NewRelation(r.Name, r.Schema)
	out.Tuples = make([]Tuple, len(r.Tuples))
	copy(out.Tuples, r.Tuples)
	idx := make([]int, len(r.Tuples))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return tupleLess(r.Tuples[idx[a]], r.Tuples[idx[b]])
	})
	out.Tuples = out.Tuples[:0]
	for _, i := range idx {
		out.Tuples = append(out.Tuples, r.Tuples[i])
		if len(r.IDs) > 0 {
			out.IDs = append(out.IDs, r.IDs[i])
		}
	}
	return out
}

func tupleLess(a, b Tuple) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if c := a[i].SortKey(b[i]); c != 0 {
			return c < 0
		}
	}
	return len(a) < len(b)
}

// String renders the relation as a small text table.
func (r *Relation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s%s [%d tuples]\n", r.Name, r.Schema, len(r.Tuples))
	for i, t := range r.Tuples {
		if i >= 20 {
			fmt.Fprintf(&b, "  ... (%d more)\n", len(r.Tuples)-i)
			break
		}
		if id := r.ID(i); id != InvalidTupleID {
			fmt.Fprintf(&b, "  %s %s\n", t, id.Label())
		} else {
			fmt.Fprintf(&b, "  %s\n", t)
		}
	}
	return b.String()
}
