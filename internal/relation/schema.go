package relation

import (
	"fmt"
	"strings"
)

// Attribute is a named, typed column. Names may be qualified
// ("Student.name") or plain ("name").
type Attribute struct {
	Name string
	Type Kind
}

// Schema is an ordered list of attributes.
type Schema struct {
	Attrs []Attribute
}

// NewSchema builds a schema from (name, type) pairs.
func NewSchema(attrs ...Attribute) Schema { return Schema{Attrs: attrs} }

// Attr is shorthand for constructing an Attribute.
func Attr(name string, typ Kind) Attribute { return Attribute{Name: name, Type: typ} }

// Arity returns the number of attributes.
func (s Schema) Arity() int { return len(s.Attrs) }

// Names returns the attribute names in order.
func (s Schema) Names() []string {
	out := make([]string, len(s.Attrs))
	for i, a := range s.Attrs {
		out[i] = a.Name
	}
	return out
}

// IndexExact returns the position of the attribute with exactly the given
// name, or -1.
func (s Schema) IndexExact(name string) int {
	for i, a := range s.Attrs {
		if a.Name == name {
			return i
		}
	}
	return -1
}

// Resolve finds the attribute referenced by name. It first tries an exact
// match; failing that, it matches name against the unqualified suffix of
// qualified attributes (and vice versa). An ambiguous reference is an error.
func (s Schema) Resolve(name string) (int, error) {
	if i := s.IndexExact(name); i >= 0 {
		return i, nil
	}
	found := -1
	for i, a := range s.Attrs {
		if baseName(a.Name) == name || a.Name == baseName(name) ||
			(strings.Contains(name, ".") && baseName(a.Name) == baseName(name) && strings.HasSuffix(a.Name, "."+baseName(name)) && qualifier(a.Name) == qualifier(name)) {
			if found >= 0 {
				return -1, fmt.Errorf("relation: ambiguous attribute reference %q in schema %s", name, s)
			}
			found = i
		}
	}
	if found < 0 {
		return -1, fmt.Errorf("relation: unknown attribute %q in schema %s", name, s)
	}
	return found, nil
}

func baseName(name string) string {
	if i := strings.LastIndex(name, "."); i >= 0 {
		return name[i+1:]
	}
	return name
}

func qualifier(name string) string {
	if i := strings.LastIndex(name, "."); i >= 0 {
		return name[:i]
	}
	return ""
}

// BaseName returns the unqualified part of an attribute name.
func BaseName(name string) string { return baseName(name) }

// Qualify returns a copy of the schema with every attribute name prefixed by
// qual + ".". Existing qualifiers are replaced.
func (s Schema) Qualify(qual string) Schema {
	out := Schema{Attrs: make([]Attribute, len(s.Attrs))}
	for i, a := range s.Attrs {
		out.Attrs[i] = Attribute{Name: qual + "." + baseName(a.Name), Type: a.Type}
	}
	return out
}

// Unqualify strips qualifiers from all attribute names.
func (s Schema) Unqualify() Schema {
	out := Schema{Attrs: make([]Attribute, len(s.Attrs))}
	for i, a := range s.Attrs {
		out.Attrs[i] = Attribute{Name: baseName(a.Name), Type: a.Type}
	}
	return out
}

// Concat appends another schema (used by joins / cross products).
func (s Schema) Concat(o Schema) Schema {
	out := Schema{Attrs: make([]Attribute, 0, len(s.Attrs)+len(o.Attrs))}
	out.Attrs = append(out.Attrs, s.Attrs...)
	out.Attrs = append(out.Attrs, o.Attrs...)
	return out
}

// Project returns the sub-schema at the given positions.
func (s Schema) Project(idxs []int) Schema {
	out := Schema{Attrs: make([]Attribute, len(idxs))}
	for i, j := range idxs {
		out.Attrs[i] = s.Attrs[j]
	}
	return out
}

// UnionCompatible reports whether two schemas have the same arity and
// pairwise compatible types (null is compatible with anything; int and float
// are mutually compatible).
func (s Schema) UnionCompatible(o Schema) bool {
	if len(s.Attrs) != len(o.Attrs) {
		return false
	}
	for i := range s.Attrs {
		if !typesCompatible(s.Attrs[i].Type, o.Attrs[i].Type) {
			return false
		}
	}
	return true
}

func typesCompatible(a, b Kind) bool {
	if a == b || a == KindNull || b == KindNull {
		return true
	}
	num := func(k Kind) bool { return k == KindInt || k == KindFloat }
	return num(a) && num(b)
}

// String renders the schema as (name:type, ...).
func (s Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, a := range s.Attrs {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.Name)
		b.WriteByte(':')
		b.WriteString(a.Type.String())
	}
	b.WriteByte(')')
	return b.String()
}

// Equal reports structural equality of two schemas.
func (s Schema) Equal(o Schema) bool {
	if len(s.Attrs) != len(o.Attrs) {
		return false
	}
	for i := range s.Attrs {
		if s.Attrs[i] != o.Attrs[i] {
			return false
		}
	}
	return true
}
