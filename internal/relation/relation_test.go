package relation

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestValueKinds(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
		str  string
	}{
		{Null(), KindNull, "NULL"},
		{Bool(true), KindBool, "true"},
		{Bool(false), KindBool, "false"},
		{Int(42), KindInt, "42"},
		{Int(-7), KindInt, "-7"},
		{Float(2.5), KindFloat, "2.5"},
		{String("hi"), KindString, "hi"},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("%v: kind = %v, want %v", c.v, c.v.Kind(), c.kind)
		}
		if c.v.String() != c.str {
			t.Errorf("String() = %q, want %q", c.v.String(), c.str)
		}
	}
}

func TestValueEqual(t *testing.T) {
	if Null().Equal(Null()) {
		t.Error("NULL = NULL should be false (SQL semantics)")
	}
	if !Int(3).Equal(Float(3.0)) {
		t.Error("3 = 3.0 should hold across kinds")
	}
	if Int(3).Equal(String("3")) {
		t.Error("3 = '3' should not hold")
	}
	if !String("a").Equal(String("a")) {
		t.Error("'a' = 'a' should hold")
	}
}

func TestValueIdentical(t *testing.T) {
	if !Null().Identical(Null()) {
		t.Error("NULL identical NULL should hold (dedup semantics)")
	}
	if Int(3).Identical(Float(3)) {
		t.Error("int 3 and float 3 must not be identical")
	}
}

func TestValueCompare(t *testing.T) {
	if c, ok := Int(1).Compare(Int(2)); !ok || c != -1 {
		t.Errorf("1 vs 2 = (%d,%v)", c, ok)
	}
	if c, ok := Float(2.5).Compare(Int(2)); !ok || c != 1 {
		t.Errorf("2.5 vs 2 = (%d,%v)", c, ok)
	}
	if c, ok := String("abc").Compare(String("abd")); !ok || c != -1 {
		t.Errorf("abc vs abd = (%d,%v)", c, ok)
	}
	if _, ok := Null().Compare(Int(1)); ok {
		t.Error("NULL comparison should be incomparable")
	}
	if _, ok := Int(1).Compare(String("1")); ok {
		t.Error("cross-kind int/string comparison should fail")
	}
}

func TestValueArith(t *testing.T) {
	got, err := Add(Int(2), Int(3))
	if err != nil || !got.Identical(Int(5)) {
		t.Errorf("2+3 = %v, %v", got, err)
	}
	got, err = Mul(Int(2), Float(1.5))
	if err != nil || !got.Identical(Float(3)) {
		t.Errorf("2*1.5 = %v, %v", got, err)
	}
	got, err = Div(Int(7), Int(2))
	if err != nil || !got.Identical(Float(3.5)) {
		t.Errorf("7/2 = %v, %v", got, err)
	}
	if _, err = Div(Int(1), Int(0)); err == nil {
		t.Error("division by zero should error")
	}
	got, err = Add(Null(), Int(1))
	if err != nil || !got.IsNull() {
		t.Errorf("NULL+1 = %v, %v", got, err)
	}
	if _, err = Add(String("x"), Int(1)); err == nil {
		t.Error("string+int should error")
	}
}

func TestParseValue(t *testing.T) {
	cases := map[string]Value{
		"42":      Int(42),
		"2.5":     Float(2.5),
		"'CS'":    String("CS"),
		"'it''s'": String("it's"),
		"NULL":    Null(),
		"true":    Bool(true),
		"hello":   String("hello"),
	}
	for in, want := range cases {
		if got := ParseValue(in); !got.Identical(want) {
			t.Errorf("ParseValue(%q) = %v (%v), want %v (%v)", in, got, got.Kind(), want, want.Kind())
		}
	}
}

func TestSchemaResolve(t *testing.T) {
	s := NewSchema(Attr("s.name", KindString), Attr("s.major", KindString), Attr("r.name", KindString))
	if i, err := s.Resolve("s.major"); err != nil || i != 1 {
		t.Errorf("Resolve(s.major) = %d, %v", i, err)
	}
	if i, err := s.Resolve("major"); err != nil || i != 1 {
		t.Errorf("Resolve(major) = %d, %v", i, err)
	}
	if _, err := s.Resolve("name"); err == nil {
		t.Error("Resolve(name) should be ambiguous")
	}
	if _, err := s.Resolve("nope"); err == nil {
		t.Error("Resolve(nope) should fail")
	}
}

func TestSchemaQualify(t *testing.T) {
	s := NewSchema(Attr("name", KindString), Attr("x.major", KindString))
	q := s.Qualify("r")
	if q.Attrs[0].Name != "r.name" || q.Attrs[1].Name != "r.major" {
		t.Errorf("Qualify = %v", q)
	}
	u := q.Unqualify()
	if u.Attrs[0].Name != "name" || u.Attrs[1].Name != "major" {
		t.Errorf("Unqualify = %v", u)
	}
}

func TestSchemaUnionCompatible(t *testing.T) {
	a := NewSchema(Attr("x", KindInt), Attr("y", KindString))
	b := NewSchema(Attr("p", KindFloat), Attr("q", KindString))
	c := NewSchema(Attr("p", KindString), Attr("q", KindString))
	if !a.UnionCompatible(b) {
		t.Error("int/float columns should be union-compatible")
	}
	if a.UnionCompatible(c) {
		t.Error("int/string columns should not be union-compatible")
	}
	if a.UnionCompatible(NewSchema(Attr("x", KindInt))) {
		t.Error("different arity should not be union-compatible")
	}
}

func TestTupleKeyDistinguishes(t *testing.T) {
	a := NewTuple(Int(1), String("a"))
	b := NewTuple(Int(1), String("a"))
	c := NewTuple(Int(1), String("b"))
	d := NewTuple(Float(1), String("a"))
	if a.Key() != b.Key() {
		t.Error("identical tuples must share keys")
	}
	if a.Key() == c.Key() || a.Key() == d.Key() {
		t.Error("distinct tuples must have distinct keys")
	}
}

func TestTupleKeyProperty(t *testing.T) {
	f := func(x, y int64, s1, s2 string) bool {
		a := NewTuple(Int(x), String(s1))
		b := NewTuple(Int(y), String(s2))
		return (a.Key() == b.Key()) == a.Identical(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTupleKeyNoSeparatorConfusion(t *testing.T) {
	// A tuple of two strings must not collide with a different split.
	a := NewTuple(String("ab"), String("c"))
	b := NewTuple(String("a"), String("bc"))
	if a.Key() == b.Key() {
		t.Error("string boundary confusion in Key")
	}
}

func exampleDatabase() *Database {
	// The running example of the paper (Figure 1).
	db := NewDatabase()
	db.CreateRelation("Student", NewSchema(Attr("name", KindString), Attr("major", KindString)))
	db.CreateRelation("Registration", NewSchema(
		Attr("name", KindString), Attr("course", KindString), Attr("dept", KindString), Attr("grade", KindInt)))
	db.Insert("Student", NewTuple(String("Mary"), String("CS")))
	db.Insert("Student", NewTuple(String("John"), String("ECON")))
	db.Insert("Student", NewTuple(String("Jesse"), String("CS")))
	reg := [][4]string{
		{"Mary", "216", "CS", "100"},
		{"Mary", "230", "CS", "75"},
		{"Mary", "208D", "ECON", "95"},
		{"John", "316", "CS", "90"},
		{"John", "208D", "ECON", "88"},
		{"Jesse", "216", "CS", "95"},
		{"Jesse", "316", "CS", "90"},
		{"Jesse", "330", "CS", "85"},
	}
	for _, r := range reg {
		db.Insert("Registration", NewTuple(String(r[0]), String(r[1]), String(r[2]), ParseValue(r[3])))
	}
	return db
}

func TestDatabaseBasics(t *testing.T) {
	db := exampleDatabase()
	if db.Size() != 11 {
		t.Errorf("Size = %d, want 11", db.Size())
	}
	if got := db.Names(); len(got) != 2 || got[0] != "Student" {
		t.Errorf("Names = %v", got)
	}
	rel, tuple, ok := db.Lookup(1)
	if !ok || rel != "Student" || !tuple[0].Identical(String("Mary")) {
		t.Errorf("Lookup(1) = %s %v %v", rel, tuple, ok)
	}
	if _, _, ok := db.Lookup(99); ok {
		t.Error("Lookup(99) should fail")
	}
	if n := len(db.AllIDs()); n != 11 {
		t.Errorf("AllIDs = %d ids", n)
	}
}

func TestSubinstance(t *testing.T) {
	db := exampleDatabase()
	keep := map[TupleID]bool{1: true, 4: true, 5: true}
	sub := db.Subinstance(keep)
	if sub.Size() != 3 {
		t.Fatalf("subinstance size = %d, want 3", sub.Size())
	}
	if !sub.SubinstanceOf(db) {
		t.Error("Subinstance result must be a subinstance of the parent")
	}
	// Identifiers must be preserved.
	rel, tuple, ok := sub.Lookup(4)
	if !ok || rel != "Registration" || !tuple[1].Identical(String("216")) {
		t.Errorf("Lookup(4) in subinstance = %s %v %v", rel, tuple, ok)
	}
	if sub.Relation("Student").Len() != 1 || sub.Relation("Registration").Len() != 2 {
		t.Error("wrong relation sizes in subinstance")
	}
}

func TestSubinstanceProperty(t *testing.T) {
	db := exampleDatabase()
	f := func(mask uint16) bool {
		keep := map[TupleID]bool{}
		n := 0
		for i := 0; i < 11; i++ {
			if mask&(1<<i) != 0 {
				keep[TupleID(i+1)] = true
				n++
			}
		}
		sub := db.Subinstance(keep)
		return sub.Size() == n && sub.SubinstanceOf(db)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCloneIndependent(t *testing.T) {
	db := exampleDatabase()
	cl := db.Clone()
	if cl.Size() != db.Size() {
		t.Fatal("clone size mismatch")
	}
	cl.Insert("Student", NewTuple(String("Zed"), String("MATH")))
	if db.Size() == cl.Size() {
		t.Error("insert into clone leaked into original")
	}
}

func TestRelationSetOps(t *testing.T) {
	s := NewSchema(Attr("x", KindInt))
	a := NewRelation("a", s)
	a.Append(NewTuple(Int(1)))
	a.Append(NewTuple(Int(2)))
	a.Append(NewTuple(Int(2)))
	b := NewRelation("b", s)
	b.Append(NewTuple(Int(2)))
	if d := a.Dedup(); d.Len() != 2 {
		t.Errorf("Dedup len = %d", d.Len())
	}
	diff := a.SetDiff(b)
	if diff.Len() != 1 || !diff.Tuples[0][0].Identical(Int(1)) {
		t.Errorf("SetDiff = %v", diff.Tuples)
	}
	if a.SetEqual(b) {
		t.Error("a != b expected")
	}
	c := NewRelation("c", s)
	c.Append(NewTuple(Int(2)))
	c.Append(NewTuple(Int(1)))
	if !a.SetEqual(c) {
		t.Error("a == c expected (set semantics)")
	}
	if !a.Contains(NewTuple(Int(1))) || a.Contains(NewTuple(Int(3))) {
		t.Error("Contains misbehaves")
	}
}

func TestRelationSorted(t *testing.T) {
	s := NewSchema(Attr("x", KindInt), Attr("y", KindString))
	r := NewRelation("r", s)
	r.Append(NewTuple(Int(2), String("b")))
	r.Append(NewTuple(Int(1), String("z")))
	r.Append(NewTuple(Int(1), String("a")))
	sorted := r.Sorted()
	want := []Tuple{
		NewTuple(Int(1), String("a")),
		NewTuple(Int(1), String("z")),
		NewTuple(Int(2), String("b")),
	}
	for i, w := range want {
		if !sorted.Tuples[i].Identical(w) {
			t.Errorf("Sorted[%d] = %v, want %v", i, sorted.Tuples[i], w)
		}
	}
}

func TestKeyConstraint(t *testing.T) {
	db := exampleDatabase()
	if err := (Key{Relation: "Student", Attrs: []string{"name"}}).Validate(db); err != nil {
		t.Errorf("unique key reported violation: %v", err)
	}
	if err := (Key{Relation: "Registration", Attrs: []string{"name"}}).Validate(db); err == nil {
		t.Error("non-unique key should report violation")
	}
	if err := (Key{Relation: "Registration", Attrs: []string{"name", "course"}}).Validate(db); err != nil {
		t.Errorf("composite key: %v", err)
	}
}

func TestNotNullAndFD(t *testing.T) {
	db := exampleDatabase()
	db.Insert("Student", NewTuple(Null(), String("CS")))
	if err := (NotNull{Relation: "Student", Attr: "name"}).Validate(db); err == nil {
		t.Error("not-null should catch NULL")
	}
	if err := (NotNull{Relation: "Student", Attr: "major"}).Validate(db); err != nil {
		t.Errorf("major has no NULLs: %v", err)
	}
	if err := (FD{Relation: "Registration", From: []string{"name", "course"}, To: []string{"dept"}}).Validate(db); err != nil {
		t.Errorf("valid FD reported violation: %v", err)
	}
	if err := (FD{Relation: "Registration", From: []string{"dept"}, To: []string{"grade"}}).Validate(db); err == nil {
		t.Error("invalid FD should report violation")
	}
}

func TestForeignKey(t *testing.T) {
	db := exampleDatabase()
	fk := ForeignKey{ChildRel: "Registration", ChildAttrs: []string{"name"},
		ParentRel: "Student", ParentAttrs: []string{"name"}}
	if err := fk.Validate(db); err != nil {
		t.Errorf("valid FK reported violation: %v", err)
	}
	// Drop Mary from Student: registrations now dangle.
	keep := map[TupleID]bool{}
	for _, id := range db.AllIDs() {
		keep[id] = true
	}
	keep[1] = false
	sub := db.Subinstance(keep)
	if err := fk.Validate(sub); err == nil {
		t.Error("dangling FK should report violation")
	}
	if fk.ClosedUnderSubinstance() {
		t.Error("FK must not be closed under subinstances")
	}
	if !(Key{Relation: "Student", Attrs: []string{"name"}}).ClosedUnderSubinstance() {
		t.Error("keys are closed under subinstances")
	}
}

func TestForeignKeyParentsOf(t *testing.T) {
	db := exampleDatabase()
	fk := ForeignKey{ChildRel: "Registration", ChildAttrs: []string{"name"},
		ParentRel: "Student", ParentAttrs: []string{"name"}}
	parents, err := fk.ParentsOf(db)
	if err != nil {
		t.Fatal(err)
	}
	// Registration tuple 4 (Mary 216) references Student tuple 1 (Mary).
	if ps := parents[4]; len(ps) != 1 || ps[0] != 1 {
		t.Errorf("parents of t4 = %v, want [1]", ps)
	}
	if len(parents) != 8 {
		t.Errorf("expected 8 child entries, got %d", len(parents))
	}
}

func TestValidateAll(t *testing.T) {
	db := exampleDatabase()
	cs := []Constraint{
		Key{Relation: "Student", Attrs: []string{"name"}},
		ForeignKey{ChildRel: "Registration", ChildAttrs: []string{"name"},
			ParentRel: "Student", ParentAttrs: []string{"name"}},
	}
	if err := ValidateAll(db, cs); err != nil {
		t.Errorf("valid instance failed: %v", err)
	}
}

func TestTupleIDLabel(t *testing.T) {
	if TupleID(7).Label() != "t7" {
		t.Errorf("Label = %q", TupleID(7).Label())
	}
	if InvalidTupleID.Label() != "t?" {
		t.Errorf("invalid Label = %q", InvalidTupleID.Label())
	}
}

func TestRelationString(t *testing.T) {
	db := exampleDatabase()
	s := db.Relation("Student").String()
	if !strings.Contains(s, "Mary") || !strings.Contains(s, "t1") {
		t.Errorf("String output missing content: %q", s)
	}
}
