package relation

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// Database is a named collection of base relations whose tuples carry
// database-wide unique identifiers. It is the "database instance D" of the
// paper; counterexamples are subinstances selected by tuple identifier.
type Database struct {
	rels   map[string]*Relation
	order  []string
	nextID TupleID
	byID   map[TupleID]tupleRef
	// version counts content mutations (inserts); derived holds an opaque
	// cache of data computed from the instance (the engine's cardinality
	// statistics), validated against version by its owner. The slot is
	// atomic because a read-only database may be shared by concurrent
	// requests that race to populate it; version is a plain field because
	// mutation and concurrent sharing never overlap (instances are built,
	// then served read-only).
	version int64
	derived atomic.Value
}

type tupleRef struct {
	rel string
	idx int
}

// NewDatabase creates an empty database instance.
func NewDatabase() *Database {
	return &Database{
		rels: make(map[string]*Relation),
		byID: make(map[TupleID]tupleRef),
	}
}

// CreateRelation registers an empty base relation. It panics if the name is
// already taken.
func (d *Database) CreateRelation(name string, schema Schema) *Relation {
	if _, ok := d.rels[name]; ok {
		panic(fmt.Sprintf("relation: duplicate relation %q", name))
	}
	r := NewRelation(name, schema)
	d.rels[name] = r
	d.order = append(d.order, name)
	return r
}

// Insert appends a tuple to a base relation, assigning and returning a fresh
// identifier. It panics on arity mismatch or unknown relation.
func (d *Database) Insert(name string, t Tuple) TupleID {
	r, ok := d.rels[name]
	if !ok {
		panic(fmt.Sprintf("relation: unknown relation %q", name))
	}
	if len(t) != r.Schema.Arity() {
		panic(fmt.Sprintf("relation: arity mismatch inserting into %q: got %d want %d", name, len(t), r.Schema.Arity()))
	}
	d.nextID++
	id := d.nextID
	d.byID[id] = tupleRef{rel: name, idx: len(r.Tuples)}
	r.AppendWithID(t, id)
	d.version++
	return id
}

// Version returns a counter that changes whenever the database content
// does. Derived-data caches compare it to detect staleness.
func (d *Database) Version() int64 { return d.version }

// Derived returns the opaque derived-data cache slot, or nil.
func (d *Database) Derived() any { return d.derived.Load() }

// SetDerived publishes a derived-data cache for this instance. Concurrent
// publishers may race; any published value must be recomputable, and
// last-write-wins is fine.
func (d *Database) SetDerived(v any) { d.derived.Store(v) }

// Relation returns the named base relation, or nil.
func (d *Database) Relation(name string) *Relation { return d.rels[name] }

// Names returns relation names in creation order.
func (d *Database) Names() []string {
	out := make([]string, len(d.order))
	copy(out, d.order)
	return out
}

// Size returns the total number of tuples across all relations (|D|).
func (d *Database) Size() int {
	n := 0
	for _, name := range d.order {
		n += d.rels[name].Len()
	}
	return n
}

// Lookup resolves an identifier to its relation name and tuple, or ok=false.
func (d *Database) Lookup(id TupleID) (relName string, t Tuple, ok bool) {
	ref, ok := d.byID[id]
	if !ok {
		return "", nil, false
	}
	return ref.rel, d.rels[ref.rel].Tuples[ref.idx], true
}

// AllIDs returns every tuple identifier in the database, sorted.
func (d *Database) AllIDs() []TupleID {
	out := make([]TupleID, 0, len(d.byID))
	for id := range d.byID {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Subinstance builds the subinstance D' ⊆ D containing exactly the tuples
// whose identifiers appear in keep. Tuples retain their original
// identifiers, so provenance variables remain stable across subinstances.
func (d *Database) Subinstance(keep map[TupleID]bool) *Database {
	sub := NewDatabase()
	sub.nextID = d.nextID
	for _, name := range d.order {
		r := d.rels[name]
		nr := sub.CreateRelation(name, r.Schema)
		for i, t := range r.Tuples {
			id := r.IDs[i]
			if keep[id] {
				sub.byID[id] = tupleRef{rel: name, idx: len(nr.Tuples)}
				nr.AppendWithID(t, id)
			}
		}
	}
	return sub
}

// SubinstanceOf reports whether every tuple of d appears (by identifier) in
// parent.
func (d *Database) SubinstanceOf(parent *Database) bool {
	for id := range d.byID {
		if _, ok := parent.byID[id]; !ok {
			return false
		}
	}
	return true
}

// Clone deep-copies the database (tuples are shared; they are immutable by
// convention).
func (d *Database) Clone() *Database {
	out := NewDatabase()
	out.nextID = d.nextID
	for _, name := range d.order {
		r := d.rels[name]
		nr := out.CreateRelation(name, r.Schema)
		nr.Tuples = append(nr.Tuples, r.Tuples...)
		nr.IDs = append(nr.IDs, r.IDs...)
		for i, id := range r.IDs {
			out.byID[id] = tupleRef{rel: name, idx: i}
		}
	}
	return out
}

// String renders all relations.
func (d *Database) String() string {
	var b strings.Builder
	for _, name := range d.order {
		b.WriteString(d.rels[name].String())
	}
	return b.String()
}
