package relation

import (
	"fmt"
	"strings"
)

// Constraint is an integrity constraint Γ over a database instance.
//
// Keys, not-null constraints and functional dependencies are closed under
// subinstances (Section 2.1 of the paper), so a valid instance's
// subinstances satisfy them automatically. Foreign keys are not closed under
// subinstances and are handled explicitly by the counterexample algorithms
// (Section 4.3).
type Constraint interface {
	// Validate reports the first violation in db, or nil.
	Validate(db *Database) error
	// String renders the constraint for diagnostics.
	String() string
	// ClosedUnderSubinstance reports whether any subinstance of a valid
	// instance trivially satisfies the constraint.
	ClosedUnderSubinstance() bool
}

// Key declares that Attrs uniquely identify tuples of Relation.
type Key struct {
	Relation string
	Attrs    []string
}

// Validate implements Constraint.
func (k Key) Validate(db *Database) error {
	r := db.Relation(k.Relation)
	if r == nil {
		return fmt.Errorf("relation: key constraint on unknown relation %q", k.Relation)
	}
	idxs, err := resolveAll(r.Schema, k.Attrs)
	if err != nil {
		return err
	}
	seen := make(map[string]int, r.Len())
	for i, t := range r.Tuples {
		key := t.Project(idxs).Key()
		if j, dup := seen[key]; dup {
			return fmt.Errorf("relation: key violation on %s(%s): tuples %s and %s agree on key",
				k.Relation, strings.Join(k.Attrs, ","), r.ID(j).Label(), r.ID(i).Label())
		}
		seen[key] = i
	}
	return nil
}

// ClosedUnderSubinstance implements Constraint.
func (k Key) ClosedUnderSubinstance() bool { return true }

func (k Key) String() string {
	return fmt.Sprintf("KEY %s(%s)", k.Relation, strings.Join(k.Attrs, ","))
}

// NotNull declares that Attr of Relation contains no NULLs.
type NotNull struct {
	Relation string
	Attr     string
}

// Validate implements Constraint.
func (n NotNull) Validate(db *Database) error {
	r := db.Relation(n.Relation)
	if r == nil {
		return fmt.Errorf("relation: not-null constraint on unknown relation %q", n.Relation)
	}
	i, err := r.Schema.Resolve(n.Attr)
	if err != nil {
		return err
	}
	for j, t := range r.Tuples {
		if t[i].IsNull() {
			return fmt.Errorf("relation: not-null violation on %s.%s at %s", n.Relation, n.Attr, r.ID(j).Label())
		}
	}
	return nil
}

// ClosedUnderSubinstance implements Constraint.
func (n NotNull) ClosedUnderSubinstance() bool { return true }

func (n NotNull) String() string { return fmt.Sprintf("NOT NULL %s.%s", n.Relation, n.Attr) }

// FD declares the functional dependency From -> To on Relation.
type FD struct {
	Relation string
	From     []string
	To       []string
}

// Validate implements Constraint.
func (f FD) Validate(db *Database) error {
	r := db.Relation(f.Relation)
	if r == nil {
		return fmt.Errorf("relation: FD on unknown relation %q", f.Relation)
	}
	from, err := resolveAll(r.Schema, f.From)
	if err != nil {
		return err
	}
	to, err := resolveAll(r.Schema, f.To)
	if err != nil {
		return err
	}
	seen := make(map[string]string, r.Len())
	for i, t := range r.Tuples {
		lhs := t.Project(from).Key()
		rhs := t.Project(to).Key()
		if prev, ok := seen[lhs]; ok && prev != rhs {
			return fmt.Errorf("relation: FD violation %s at %s", f, r.ID(i).Label())
		}
		seen[lhs] = rhs
	}
	return nil
}

// ClosedUnderSubinstance implements Constraint.
func (f FD) ClosedUnderSubinstance() bool { return true }

func (f FD) String() string {
	return fmt.Sprintf("FD %s: %s -> %s", f.Relation, strings.Join(f.From, ","), strings.Join(f.To, ","))
}

// ForeignKey declares that (ChildRel.ChildAttrs) references
// (ParentRel.ParentAttrs). NULL child values are exempt (SQL semantics).
type ForeignKey struct {
	ChildRel    string
	ChildAttrs  []string
	ParentRel   string
	ParentAttrs []string
}

// Validate implements Constraint.
func (fk ForeignKey) Validate(db *Database) error {
	child := db.Relation(fk.ChildRel)
	parent := db.Relation(fk.ParentRel)
	if child == nil || parent == nil {
		return fmt.Errorf("relation: foreign key %s references unknown relation", fk)
	}
	cIdx, err := resolveAll(child.Schema, fk.ChildAttrs)
	if err != nil {
		return err
	}
	pIdx, err := resolveAll(parent.Schema, fk.ParentAttrs)
	if err != nil {
		return err
	}
	parentKeys := make(map[string]bool, parent.Len())
	for _, t := range parent.Tuples {
		parentKeys[t.Project(pIdx).Key()] = true
	}
	for i, t := range child.Tuples {
		sub := t.Project(cIdx)
		null := false
		for _, v := range sub {
			if v.IsNull() {
				null = true
				break
			}
		}
		if null {
			continue
		}
		if !parentKeys[sub.Key()] {
			return fmt.Errorf("relation: foreign key violation %s at %s", fk, child.ID(i).Label())
		}
	}
	return nil
}

// ClosedUnderSubinstance implements Constraint.
func (fk ForeignKey) ClosedUnderSubinstance() bool { return false }

func (fk ForeignKey) String() string {
	return fmt.Sprintf("FK %s(%s) -> %s(%s)", fk.ChildRel, strings.Join(fk.ChildAttrs, ","),
		fk.ParentRel, strings.Join(fk.ParentAttrs, ","))
}

// ParentsOf returns, for every child tuple of db, the identifiers of parent
// tuples it references: the result maps a child TupleID to the (possibly
// multiple, under duplicate parent keys) parent TupleIDs. Child tuples with
// NULL foreign-key values are omitted.
//
// This is the raw material of the paper's Section 4.3: a child variable
// implies the disjunction of its parent variables.
func (fk ForeignKey) ParentsOf(db *Database) (map[TupleID][]TupleID, error) {
	child := db.Relation(fk.ChildRel)
	parent := db.Relation(fk.ParentRel)
	if child == nil || parent == nil {
		return nil, fmt.Errorf("relation: foreign key %s references unknown relation", fk)
	}
	cIdx, err := resolveAll(child.Schema, fk.ChildAttrs)
	if err != nil {
		return nil, err
	}
	pIdx, err := resolveAll(parent.Schema, fk.ParentAttrs)
	if err != nil {
		return nil, err
	}
	parents := make(map[string][]TupleID, parent.Len())
	for i, t := range parent.Tuples {
		k := t.Project(pIdx).Key()
		parents[k] = append(parents[k], parent.IDs[i])
	}
	out := make(map[TupleID][]TupleID, child.Len())
	for i, t := range child.Tuples {
		sub := t.Project(cIdx)
		null := false
		for _, v := range sub {
			if v.IsNull() {
				null = true
				break
			}
		}
		if null {
			continue
		}
		if ps := parents[sub.Key()]; len(ps) > 0 {
			out[child.IDs[i]] = ps
		}
	}
	return out, nil
}

// ValidateAll checks db against every constraint and returns the first
// violation.
func ValidateAll(db *Database, cs []Constraint) error {
	for _, c := range cs {
		if err := c.Validate(db); err != nil {
			return err
		}
	}
	return nil
}

func resolveAll(s Schema, names []string) ([]int, error) {
	out := make([]int, len(names))
	for i, n := range names {
		j, err := s.Resolve(n)
		if err != nil {
			return nil, err
		}
		out[i] = j
	}
	return out, nil
}
