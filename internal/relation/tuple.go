package relation

import (
	"fmt"
	"strconv"
	"strings"
)

// TupleID is a database-wide unique identifier of a base tuple, used as the
// provenance variable for that tuple (the t1, t2, ... annotations in the
// paper). Derived tuples produced by query evaluation have no TupleID.
type TupleID int

// InvalidTupleID marks the absence of an identifier.
const InvalidTupleID TupleID = -1

// Label renders the identifier in the paper's "t<N>" style.
func (id TupleID) Label() string {
	if id == InvalidTupleID {
		return "t?"
	}
	return "t" + strconv.Itoa(int(id))
}

// Tuple is an ordered list of values. Tuples are positional; their meaning
// comes from an accompanying Schema.
type Tuple []Value

// NewTuple builds a tuple from values.
func NewTuple(vals ...Value) Tuple { return Tuple(vals) }

// Key encodes the tuple into a string usable as a set-semantics
// deduplication key. Identical tuples (Value.Identical per position) have
// identical keys.
func (t Tuple) Key() string {
	var b strings.Builder
	for _, v := range t {
		b.WriteByte(byte(v.kind) + '0')
		b.WriteByte('\x1f')
		switch v.kind {
		case KindInt, KindBool:
			b.WriteString(strconv.FormatInt(v.i, 10))
		case KindFloat:
			b.WriteString(strconv.FormatFloat(v.f, 'g', -1, 64))
		case KindString:
			b.WriteString(v.s)
		}
		b.WriteByte('\x1e')
	}
	return b.String()
}

// Identical reports positionwise exact equality with another tuple.
func (t Tuple) Identical(o Tuple) bool {
	if len(t) != len(o) {
		return false
	}
	for i := range t {
		if !t[i].Identical(o[i]) {
			return false
		}
	}
	return true
}

// Project returns the sub-tuple at the given positions.
func (t Tuple) Project(idxs []int) Tuple {
	out := make(Tuple, len(idxs))
	for i, j := range idxs {
		out[i] = t[j]
	}
	return out
}

// Concat returns the concatenation of two tuples.
func (t Tuple) Concat(o Tuple) Tuple {
	out := make(Tuple, 0, len(t)+len(o))
	out = append(out, t...)
	out = append(out, o...)
	return out
}

// Clone returns a copy of the tuple.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// String renders the tuple as (v1, v2, ...).
func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = v.String()
	}
	return fmt.Sprintf("(%s)", strings.Join(parts, ", "))
}
