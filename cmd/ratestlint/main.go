// Command ratestlint is the repo's static-analysis suite: project-specific
// analyzers enforcing the determinism, budget and soundness invariants
// that previous PRs fixed by hand (see docs/LINTING.md).
//
// Run it through go vet so package loading, caching and test-file
// handling come from the go tool:
//
//	go build -o bin/ratestlint ./cmd/ratestlint
//	go vet -vettool=$PWD/bin/ratestlint ./...
//
// or equivalently "bin/ratestlint ./...", which re-execs the same thing.
package main

import (
	"repro/internal/lint"
	"repro/internal/lint/budgetpoll"
	"repro/internal/lint/gorecover"
	"repro/internal/lint/mapdeterminism"
	"repro/internal/lint/nakedretry"
	"repro/internal/lint/saturatedarith"
	"repro/internal/lint/sentinelcmp"
)

func main() {
	lint.Main(
		budgetpoll.Analyzer,
		gorecover.Analyzer,
		mapdeterminism.Analyzer,
		nakedretry.Analyzer,
		saturatedarith.Analyzer,
		sentinelcmp.Analyzer,
	)
}
