// Command tpchgen generates a deterministic TPC-H-style database instance
// in the ratest text format.
//
// Usage:
//
//	tpchgen -sf 0.001 -seed 1 -o tpch.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/tpch"
)

func main() {
	sf := flag.Float64("sf", 0.001, "scale factor (1.0 = official TPC-H cardinalities)")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	db := tpch.Generate(*sf, *seed)
	w := bufio.NewWriter(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tpchgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	defer w.Flush()
	if err := ratest.DumpDatabase(w, db, tpch.Constraints()); err != nil {
		fmt.Fprintln(os.Stderr, "tpchgen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "tpchgen: wrote %d tuples (sf=%v)\n", db.Size(), *sf)
}
