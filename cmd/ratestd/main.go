// Command ratestd serves counterexample explanations over HTTP — the
// long-lived deployment of the paper's RATest tool (Section 6 describes the
// web service used in Duke's undergraduate database course). Unlike the
// one-shot ratest CLI it keeps parsed query plans and generated instances
// cached across requests, bounds concurrent explanations, and enforces a
// per-request wall-clock budget.
//
// Usage:
//
//	ratestd [-addr :8080] [-default-timeout 10s] [-max-timeout 60s]
//	        [-plan-cache 256] [-instance-cache 8] [-max-concurrent N]
//	        [-max-instance-tuples 200000] [-shutdown-grace 30s]
//	        [-audit-log FILE] [-tenant-rate R] [-tenant-burst B]
//	        [-faults SPEC] [-fault-seed N]
//	ratestd -replay FILE [server flags]
//
// Endpoints: POST /explain, POST /grade, GET /healthz, GET /stats. See
// internal/server, docs/OPERATIONS.md and the README's "Running the server"
// section for the request/response formats and the operational runbook.
//
// Lifecycle: SIGTERM/SIGINT puts the server into drain mode — new requests
// get 503 + Retry-After while in-flight ones finish under their budgets.
// When -shutdown-grace is nearly spent, stragglers are budget-cancelled so
// they still return structured responses; the audit log is flushed and the
// process exits 0.
//
// -replay re-runs an audit-log JSONL file through an in-process server
// (no HTTP) and verifies that every deterministic outcome reproduces
// byte-for-byte; it exits non-zero on any mismatch.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/faults"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	planCache := flag.Int("plan-cache", 256, "parsed-plan LRU cache entries")
	instanceCache := flag.Int("instance-cache", 8, "generated-instance LRU cache entries")
	maxConcurrent := flag.Int("max-concurrent", 0, "concurrent explanations (0 = one per CPU)")
	defaultTimeout := flag.Duration("default-timeout", 10*time.Second, "per-request budget when the request sets none")
	maxTimeout := flag.Duration("max-timeout", 60*time.Second, "largest per-request budget a request may ask for")
	maxTuples := flag.Int("max-instance-tuples", 200_000, "largest instance the server will generate or accept")
	shutdownGrace := flag.Duration("shutdown-grace", 30*time.Second, "drain window after SIGTERM/SIGINT before stragglers are budget-cancelled")
	auditPath := flag.String("audit-log", "", "append a JSONL audit record per request outcome to this file")
	tenantRate := flag.Float64("tenant-rate", 0, "per-tenant sustained requests/second (0 disables rate limiting)")
	tenantBurst := flag.Int("tenant-burst", 0, "per-tenant token-bucket burst capacity")
	faultSpec := flag.String("faults", "", "fault-injection spec, e.g. panic:pool.worker:100,stall:engine.eval:50:10ms (testing only)")
	faultSeed := flag.Int64("fault-seed", 1, "seed for the deterministic fault-injection schedule")
	replayPath := flag.String("replay", "", "replay an audit-log file against a fresh server and verify deterministic outcomes, then exit")
	flag.Parse()

	cfg := server.Config{
		PlanCacheSize:     *planCache,
		InstanceCacheSize: *instanceCache,
		MaxConcurrent:     *maxConcurrent,
		DefaultTimeout:    *defaultTimeout,
		MaxTimeout:        *maxTimeout,
		MaxInstanceTuples: *maxTuples,
		TenantRate:        *tenantRate,
		TenantBurst:       *tenantBurst,
		AuditPath:         *auditPath,
	}

	if *replayPath != "" {
		os.Exit(replay(*replayPath, cfg))
	}

	if *faultSpec != "" {
		plan, err := faults.ParseSpec(*faultSpec, *faultSeed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ratestd: -faults:", err)
			os.Exit(2)
		}
		faults.Enable(plan)
		fmt.Fprintf(os.Stderr, "ratestd: fault injection armed: %s (seed %d)\n", *faultSpec, *faultSeed)
	}

	srv, err := server.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ratestd:", err)
		os.Exit(1)
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "ratestd: listening on %s\n", *addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "ratestd:", err)
			os.Exit(1)
		}
	case s := <-sig:
		// Drain sequence: stop admitting (503 + Retry-After, readiness probe
		// fails), let in-flight requests finish under their budgets, and
		// shortly before the grace window closes budget-cancel stragglers so
		// they still produce structured responses before the listener shuts.
		fmt.Fprintf(os.Stderr, "ratestd: %v, draining (grace %v)\n", s, *shutdownGrace)
		srv.BeginDrain()
		grace := *shutdownGrace
		hardAt := grace - grace/10 // leave ~10% for cancelled requests to respond
		timer := time.AfterFunc(hardAt, srv.CancelInFlight)
		ctx, cancel := context.WithTimeout(context.Background(), grace)
		err := httpSrv.Shutdown(ctx)
		cancel()
		timer.Stop()
		if err != nil {
			// The grace window closed with connections still open; cancel
			// everything and report the dirty shutdown.
			srv.CancelInFlight()
			fmt.Fprintln(os.Stderr, "ratestd: shutdown:", err)
			_ = srv.Close()
			os.Exit(1)
		}
		if err := srv.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "ratestd: audit close:", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "ratestd: drained cleanly")
	}
}

// replay re-runs an audit log against a fresh in-process server and reports
// whether the deterministic outcomes reproduce. The replay server runs
// without rate limiting or auditing: replay is sequential and must not be
// shed, and re-auditing the replay would double the log.
func replay(path string, cfg server.Config) int {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ratestd: -replay:", err)
		return 2
	}
	defer f.Close()
	cfg.TenantRate = 0
	cfg.AuditPath = ""
	cfg.AuditWriter = nil
	srv, err := server.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ratestd: -replay:", err)
		return 2
	}
	rep, err := server.Replay(f, srv, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ratestd: -replay:", err)
		return 2
	}
	fmt.Printf("replayed %d/%d entries (%d skipped as non-deterministic): %d matched, %d mismatched\n",
		rep.Replayed, rep.Total, rep.Skipped, rep.Matched, rep.Mismatched)
	if rep.Mismatched > 0 {
		return 1
	}
	return 0
}
