// Command ratestd serves counterexample explanations over HTTP — the
// long-lived deployment of the paper's RATest tool (Section 6 describes the
// web service used in Duke's undergraduate database course). Unlike the
// one-shot ratest CLI it keeps parsed query plans and generated instances
// cached across requests, bounds concurrent explanations, and enforces a
// per-request wall-clock budget.
//
// Usage:
//
//	ratestd [-addr :8080] [-default-timeout 10s] [-max-timeout 60s]
//	        [-plan-cache 256] [-instance-cache 8] [-max-concurrent N]
//	        [-max-instance-tuples 200000]
//
// Endpoints: POST /explain, POST /grade, GET /healthz, GET /stats. See
// internal/server and the README's "Running the server" section for the
// request/response formats.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	planCache := flag.Int("plan-cache", 256, "parsed-plan LRU cache entries")
	instanceCache := flag.Int("instance-cache", 8, "generated-instance LRU cache entries")
	maxConcurrent := flag.Int("max-concurrent", 0, "concurrent explanations (0 = one per CPU)")
	defaultTimeout := flag.Duration("default-timeout", 10*time.Second, "per-request budget when the request sets none")
	maxTimeout := flag.Duration("max-timeout", 60*time.Second, "largest per-request budget a request may ask for")
	maxTuples := flag.Int("max-instance-tuples", 200_000, "largest instance the server will generate or accept")
	flag.Parse()

	srv := server.New(server.Config{
		PlanCacheSize:     *planCache,
		InstanceCacheSize: *instanceCache,
		MaxConcurrent:     *maxConcurrent,
		DefaultTimeout:    *defaultTimeout,
		MaxTimeout:        *maxTimeout,
		MaxInstanceTuples: *maxTuples,
	})
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Serve until SIGINT/SIGTERM, then drain in-flight requests for up to
	// the maximum request budget before exiting.
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "ratestd: listening on %s\n", *addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "ratestd:", err)
			os.Exit(1)
		}
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "ratestd: %v, draining\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), *maxTimeout)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "ratestd: shutdown:", err)
			os.Exit(1)
		}
	}
}
