// Command ratestd serves counterexample explanations over HTTP — the
// long-lived deployment of the paper's RATest tool (Section 6 describes the
// web service used in Duke's undergraduate database course). Unlike the
// one-shot ratest CLI it keeps parsed query plans and generated instances
// cached across requests, bounds concurrent explanations, and enforces a
// per-request wall-clock budget.
//
// Usage:
//
//	ratestd [-addr :8080] [-default-timeout 10s] [-max-timeout 60s]
//	        [-plan-cache 256] [-instance-cache 8] [-session-cache 64]
//	        [-max-concurrent N] [-max-instance-tuples 200000]
//	        [-shutdown-grace 30s] [-audit-log FILE]
//	        [-tenant-rate R] [-tenant-burst B] [-faults SPEC] [-fault-seed N]
//	ratestd -frontend -workers host:port,host:port,... [frontend flags]
//	ratestd -replay FILE[,FILE...] [server flags]
//
// Endpoints: POST /explain, POST /grade, GET /healthz, GET /stats, and the
// stateful live-grading session API (POST /session, POST /session/{id}/revise,
// GET/DELETE /session/{id}) backed by incremental view maintenance. See
// internal/server, docs/OPERATIONS.md and the README's "Running the server"
// section for the request/response formats and the operational runbook.
//
// Cluster mode: -frontend turns the process into a stateless routing tier
// (internal/cluster) in front of the worker replicas named by -workers.
// The frontend shards requests by instance cache key, retries safe
// failures with backoff across replicas, hedges stragglers, circuit-breaks
// and health-ejects bad workers, and enforces tenant fairness exactly once
// for the whole cluster (run workers with -tenant-rate 0). See
// docs/OPERATIONS.md's "Cluster topology" runbook.
//
// Lifecycle: SIGTERM/SIGINT puts the process (server or frontend) into
// drain mode — new requests get 503 + Retry-After while in-flight ones
// finish under their budgets. When -shutdown-grace is nearly spent,
// stragglers are budget-cancelled so they still return structured
// responses; the audit log is flushed and the process exits 0.
//
// -replay re-runs audit-log JSONL files through an in-process server (no
// HTTP) and verifies that every deterministic outcome reproduces
// byte-for-byte; it exits non-zero on any mismatch. Give it one file for a
// standalone log, or a comma-separated list (the frontend's log plus its
// workers' logs) to additionally join-verify each frontend outcome against
// the worker entry sharing its request id.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	planCache := flag.Int("plan-cache", 256, "parsed-plan LRU cache entries")
	instanceCache := flag.Int("instance-cache", 8, "generated-instance LRU cache entries")
	sessionCache := flag.Int("session-cache", 64, "resident live-grading sessions (LRU; creating past the cap evicts the oldest)")
	maxConcurrent := flag.Int("max-concurrent", 0, "concurrent explanations (0 = one per CPU)")
	defaultTimeout := flag.Duration("default-timeout", 10*time.Second, "per-request budget when the request sets none")
	maxTimeout := flag.Duration("max-timeout", 60*time.Second, "largest per-request budget a request may ask for")
	maxTuples := flag.Int("max-instance-tuples", 200_000, "largest instance the server will generate or accept")
	shutdownGrace := flag.Duration("shutdown-grace", 30*time.Second, "drain window after SIGTERM/SIGINT before stragglers are budget-cancelled")
	auditPath := flag.String("audit-log", "", "append a JSONL audit record per request outcome to this file")
	tenantRate := flag.Float64("tenant-rate", 0, "per-tenant sustained requests/second (0 disables rate limiting)")
	tenantBurst := flag.Int("tenant-burst", 0, "per-tenant token-bucket burst capacity")
	faultSpec := flag.String("faults", "", "fault-injection spec, e.g. panic:pool.worker:100,stall:engine.eval:50:10ms (testing only)")
	faultSeed := flag.Int64("fault-seed", 1, "seed for the deterministic fault-injection schedule")
	replayPath := flag.String("replay", "", "replay audit-log file(s) (comma-separated: frontend log + worker logs join-verify) against a fresh server, then exit")
	frontend := flag.Bool("frontend", false, "run as a stateless cluster frontend routing to -workers instead of serving locally")
	workers := flag.String("workers", "", "comma-separated worker base URLs (host:port) for -frontend mode")
	maxAttempts := flag.Int("max-attempts", 3, "frontend: tries (incl. first + hedge) per request across replicas")
	tryTimeout := flag.Duration("try-timeout", 0, "frontend: per-attempt cap (0 = remaining request budget)")
	hedgeAfter := flag.Duration("hedge-after", 0, "frontend: straggler delay before a hedged second attempt (0 = adaptive 2x latency EWMA, negative disables)")
	breakerThreshold := flag.Int("breaker-threshold", 5, "frontend: consecutive failures opening a worker's circuit breaker")
	breakerCooldown := flag.Duration("breaker-cooldown", 2*time.Second, "frontend: open-breaker cooldown before a half-open probe")
	healthInterval := flag.Duration("health-interval", 500*time.Millisecond, "frontend: readiness-probe period (negative disables health checking)")
	flag.Parse()

	cfg := server.Config{
		PlanCacheSize:     *planCache,
		InstanceCacheSize: *instanceCache,
		SessionCacheSize:  *sessionCache,
		MaxConcurrent:     *maxConcurrent,
		DefaultTimeout:    *defaultTimeout,
		MaxTimeout:        *maxTimeout,
		MaxInstanceTuples: *maxTuples,
		TenantRate:        *tenantRate,
		TenantBurst:       *tenantBurst,
		AuditPath:         *auditPath,
	}

	if *replayPath != "" {
		os.Exit(replay(*replayPath, cfg))
	}

	if *faultSpec != "" {
		plan, err := faults.ParseSpec(*faultSpec, *faultSeed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ratestd: -faults:", err)
			os.Exit(2)
		}
		faults.Enable(plan)
		fmt.Fprintf(os.Stderr, "ratestd: fault injection armed: %s (seed %d)\n", *faultSpec, *faultSeed)
	}

	var svc service
	role := "server"
	if *frontend {
		role = "frontend"
		fe, err := cluster.New(cluster.Config{
			Workers:          splitList(*workers),
			MaxAttempts:      *maxAttempts,
			MaxConcurrent:    *maxConcurrent,
			DefaultTimeout:   *defaultTimeout,
			MaxTimeout:       *maxTimeout,
			TryTimeout:       *tryTimeout,
			HedgeAfter:       *hedgeAfter,
			BreakerThreshold: *breakerThreshold,
			BreakerCooldown:  *breakerCooldown,
			HealthInterval:   *healthInterval,
			TenantRate:       *tenantRate,
			TenantBurst:      *tenantBurst,
			AuditPath:        *auditPath,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "ratestd: -frontend:", err)
			os.Exit(1)
		}
		svc = fe
	} else {
		srv, err := server.New(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ratestd:", err)
			os.Exit(1)
		}
		svc = srv
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "ratestd: %s listening on %s\n", role, *addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "ratestd:", err)
			os.Exit(1)
		}
	case s := <-sig:
		// Drain sequence (identical for server and frontend): stop admitting
		// (503 + Retry-After, readiness probe fails), let in-flight requests
		// finish under their budgets, and shortly before the grace window
		// closes budget-cancel stragglers so they still produce structured
		// responses before the listener shuts.
		fmt.Fprintf(os.Stderr, "ratestd: %v, draining (grace %v)\n", s, *shutdownGrace)
		svc.BeginDrain()
		grace := *shutdownGrace
		hardAt := grace - grace/10 // leave ~10% for cancelled requests to respond
		timer := time.AfterFunc(hardAt, svc.CancelInFlight)
		ctx, cancel := context.WithTimeout(context.Background(), grace)
		err := httpSrv.Shutdown(ctx)
		cancel()
		timer.Stop()
		if err != nil {
			// The grace window closed with connections still open; cancel
			// everything and report the dirty shutdown.
			svc.CancelInFlight()
			fmt.Fprintln(os.Stderr, "ratestd: shutdown:", err)
			_ = svc.Close()
			os.Exit(1)
		}
		if err := svc.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "ratestd: audit close:", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "ratestd: drained cleanly")
	}
}

// service is what main's serve/drain sequence needs from either role: the
// worker server and the cluster frontend share the same lifecycle shape.
type service interface {
	Handler() http.Handler
	BeginDrain()
	CancelInFlight()
	Close() error
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// replay re-runs one or more audit logs (comma-separated; typically the
// cluster frontend's plus its workers') against a fresh in-process server
// and reports whether the deterministic outcomes reproduce — worker
// entries by re-execution, frontend entries by joining against the worker
// entry sharing their request id. The replay server runs without rate
// limiting or auditing: replay is sequential and must not be shed, and
// re-auditing the replay would double the log.
func replay(paths string, cfg server.Config) int {
	var readers []io.Reader
	for _, path := range splitList(paths) {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ratestd: -replay:", err)
			return 2
		}
		defer f.Close()
		readers = append(readers, f)
	}
	if len(readers) == 0 {
		fmt.Fprintln(os.Stderr, "ratestd: -replay: no log files named")
		return 2
	}
	cfg.TenantRate = 0
	cfg.AuditPath = ""
	cfg.AuditWriter = nil
	srv, err := server.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ratestd: -replay:", err)
		return 2
	}
	rep, err := server.ReplayLogs(readers, srv, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ratestd: -replay:", err)
		return 2
	}
	fmt.Printf("replayed %d/%d entries (%d skipped as non-deterministic, %d join-verified): %d matched, %d mismatched\n",
		rep.Replayed, rep.Total, rep.Skipped, rep.Joined, rep.Matched, rep.Mismatched)
	if rep.Mismatched > 0 {
		return 1
	}
	return 0
}
