// Command experiments regenerates every table and figure of the paper's
// evaluation (Sections 7–8) on the in-memory reproduction:
//
//	table1  — poly-time algorithms vs the solver on the Table 1 classes
//	table3  — |D| vs number of wrong queries discovered
//	table4  — SCP (Basic) vs SWP (Optσ): runtime and counterexample size
//	fig3    — query complexity vs per-component time
//	fig4    — data size vs per-component time
//	fig5    — witness size vs solver strategy (Naive-M vs Opt)
//	fig6    — TPC-H aggregate queries: Agg-Basic vs Agg-Opt breakdown
//	fig7    — effect of parameterization on TPC-H Q18
//	study   — user-study simulation (Figures 8–10, Table 5)
//
// Absolute numbers differ from the paper (Python+SQLServer+Z3 vs pure Go),
// but the shapes — who wins, by what factor, where the approaches break —
// are the reproduction targets; see EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/course"
	"repro/internal/engine"
	"repro/internal/eval"
	"repro/internal/mutation"
	"repro/internal/pool"
	"repro/internal/ra"
	"repro/internal/raparser"
	"repro/internal/relation"
	"repro/internal/study"
	"repro/internal/tpch"
)

func main() {
	exp := flag.String("exp", "all", "experiment: all|table1|table3|table4|fig3|fig4|fig5|fig6|fig7|study")
	maxSize := flag.Int("maxsize", 10000, "largest course-instance size (paper: 100000)")
	sf := flag.Float64("sf", 0.001, "TPC-H scale factor (paper: 1.0)")
	perQuestion := flag.Int("mutants", 8, "wrong queries kept per question")
	sample := flag.Int("sample", 12, "wrong queries sampled per measurement")
	workers := flag.Int("workers", pool.DefaultWorkers,
		"worker-pool size for the fan-out loops; use 1 for uncontended per-query timings (parallel runs inflate the per-query latency columns on multi-core machines)")
	plan := flag.Bool("plan", false,
		"print the cost-based join planner's decisions (chosen join order, estimated vs actual cardinalities, acyclic fast path) on TPC-H at -sf, then exit")
	flag.Parse()
	pool.DefaultWorkers = *workers
	core.Workers = *workers
	if *plan {
		planDemo(*sf)
		return
	}

	run := func(name string, f func()) {
		if *exp == "all" || *exp == name {
			fmt.Printf("==================== %s ====================\n", name)
			f()
			fmt.Println()
		}
	}
	run("table1", table1)
	run("table3", func() { table3(courseSizes(*maxSize), *perQuestion) })
	run("table4", func() { table4(*maxSize, *perQuestion, *sample) })
	run("fig3", func() { fig3(*maxSize, *perQuestion) })
	run("fig4", func() { fig4(courseSizes(*maxSize), *perQuestion, *sample) })
	run("fig5", func() { fig5(*maxSize, *perQuestion, *sample) })
	run("fig6", func() { fig6(*sf) })
	run("fig7", func() { fig7(*sf) })
	run("study", studyExp)
}

func courseSizes(max int) []int {
	all := []int{1000, 4000, 10000, 40000, 100000}
	var out []int
	for _, s := range all {
		if s <= max {
			out = append(out, s)
		}
	}
	if len(out) == 0 {
		out = []int{max}
	}
	return out
}

// workload pairs a wrong query with its question's correct query.
type workload struct {
	question string
	desc     string
	q1, q2   ra.Node
}

func buildWorkload(db *relation.Database, perQuestion int) []workload {
	bank := course.WrongQueryBank(db, perQuestion)
	discovered, err := course.DiscoveredWrong(db, bank)
	check(err)
	correct := map[string]ra.Node{}
	for _, q := range course.Questions() {
		correct[q.ID] = q.Correct
	}
	var out []workload
	for _, w := range discovered {
		out = append(out, workload{question: w.Question, desc: w.Desc, q1: correct[w.Question], q2: w.Query})
	}
	return out
}

// ---------------------------------------------------------------- table 1

func table1() {
	fmt.Println("Empirical check of the Table 1 tractable classes: the dedicated")
	fmt.Println("poly-time algorithms agree with the solver-based optimum.")
	db := course.GenerateDB(2000, 1)
	cases := []struct {
		class  string
		q1, q2 string
	}{
		{"SJ", "select[dept = 'CS'](Student join Registration)",
			"select[dept = 'PHYS'](Student join Registration)"},
		{"SPU", "project[name](select[dept = 'CS'](Registration)) union project[name](select[dept = 'ECON'](Registration))",
			"project[name](select[dept = 'PHYS'](Registration))"},
		{"JU*", "project[name](select[dept = 'CS'](Registration)) union project[name](Student)",
			"project[name](select[dept = 'PHYS'](Registration))"},
		{"SPJU", "project[name](select[dept = 'CS'](Student join Registration))",
			"project[name](select[dept = 'PHYS'](Student join Registration))"},
	}
	fmt.Printf("%-6s %-14s %-10s %-14s %-10s %s\n", "class", "poly-time alg", "size", "solver (Optσ)", "size", "agree")
	for _, c := range cases {
		p := core.Problem{Q1: mustParse(c.q1), Q2: mustParse(c.q2), DB: db}
		ce1, s1, err := core.MonotoneSWP(p, 0)
		check(err)
		ce2, s2, err := core.OptSigma(p)
		check(err)
		fmt.Printf("%-6s %-14v %-10d %-14v %-10d %v\n",
			c.class, s1.TotalTime.Round(time.Microsecond), ce1.Size(),
			s2.TotalTime.Round(time.Microsecond), ce2.Size(), ce1.Size() == ce2.Size())
	}
	// SPJUD*: the Example 1 pair.
	p := core.Problem{Q1: course.Questions()[4].Correct, Q2: mustParse(
		"project[name, major](select[dept = 'CS'](Student join Registration))"), DB: db}
	ce1, s1, err := core.SPJUDStarSWP(p, 1<<16)
	check(err)
	ce2, s2, err := core.OptSigma(p)
	check(err)
	fmt.Printf("%-6s %-14v %-10d %-14v %-10d %v\n", "SPJUD*",
		s1.TotalTime.Round(time.Microsecond), ce1.Size(),
		s2.TotalTime.Round(time.Microsecond), ce2.Size(), ce1.Size() == ce2.Size())
}

// ---------------------------------------------------------------- table 3

func table3(sizes []int, perQuestion int) {
	fmt.Println("Table 3: |D| vs number of wrong queries discovered")
	ref := course.GenerateDB(sizes[len(sizes)-1], 1)
	bank := course.WrongQueryBank(ref, perQuestion)
	fmt.Printf("%-12s %-22s %s\n", "# tuples", "# incorrect discovered", "bank size")
	for _, size := range sizes {
		db := course.GenerateDB(size, 1)
		found, err := course.DiscoveredWrong(db, bank)
		check(err)
		fmt.Printf("%-12d %-22d %d\n", size, len(found), len(bank))
	}
}

// ---------------------------------------------------------------- table 4

func table4(size, perQuestion, sample int) {
	fmt.Println("Table 4: SCP (Basic) vs SWP (Optσ)")
	db := course.GenerateDB(size, 1)
	wl := buildWorkload(db, perQuestion)
	if len(wl) > sample {
		wl = wl[:sample]
	}
	// Each wrong query is explained independently; fan the per-question
	// loop out over the worker pool and reduce per-index results in order
	// (so the printed aggregates are deterministic).
	type t4row struct {
		ok                 bool
		basicTime, optTime time.Duration
		basicSize, optSize int
	}
	rows := make([]t4row, len(wl))
	check(pool.ForEach(pool.DefaultWorkers, len(wl), func(i int) error {
		w := wl[i]
		p := core.Problem{Q1: w.q1, Q2: w.q2, DB: db, Constraints: course.Constraints()}
		ceB, sB, err := core.Basic(p, 128)
		if err != nil {
			return nil
		}
		ceO, sO, err := core.OptSigma(p)
		if err != nil {
			return nil
		}
		rows[i] = t4row{ok: true, basicTime: sB.TotalTime, optTime: sO.TotalTime,
			basicSize: ceB.Size(), optSize: ceO.Size()}
		return nil
	}))
	var basicTime, optTime time.Duration
	var basicSize, optSize, n int
	for _, r := range rows {
		if !r.ok {
			continue
		}
		basicTime += r.basicTime
		optTime += r.optTime
		basicSize += r.basicSize
		optSize += r.optSize
		n++
	}
	if n == 0 {
		fmt.Println("no workload")
		return
	}
	fmt.Printf("%-14s %-18s %s\n", "", "mean runtime", "mean counterexample size")
	fmt.Printf("%-14s %-18v %.2f\n", "SCP — Basic", (basicTime / time.Duration(n)).Round(time.Microsecond), float64(basicSize)/float64(n))
	fmt.Printf("%-14s %-18v %.2f\n", "SWP — Optσ", (optTime / time.Duration(n)).Round(time.Microsecond), float64(optSize)/float64(n))
	fmt.Printf("speedup: %.1fx\n", float64(basicTime)/float64(optTime))
}

// ------------------------------------------------------------------ fig 3

func fig3(size, perQuestion int) {
	fmt.Println("Figure 3: query complexity vs per-component time (Optσ)")
	db := course.GenerateDB(size, 1)
	wl := buildWorkload(db, perQuestion)
	type row struct {
		ok                 bool
		ops, diffs, height int
		raw, prov, solver  time.Duration
	}
	slots := make([]row, len(wl))
	check(pool.ForEach(pool.DefaultWorkers, len(wl), func(i int) error {
		w := wl[i]
		p := core.Problem{Q1: w.q1, Q2: w.q2, DB: db}
		_, s, err := core.OptSigma(p)
		if err != nil {
			return nil
		}
		m := ra.ComputeMetrics(&ra.Diff{L: w.q1, R: w.q2})
		slots[i] = row{true, m.Operators, m.Diffs, m.Height, s.RawEvalTime, s.ProvEvalTime, s.SolverTime}
		return nil
	}))
	var rows []row
	for _, r := range slots {
		if r.ok {
			rows = append(rows, r)
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].ops < rows[j].ops })
	fmt.Printf("%-6s %-6s %-7s %-12s %-12s %-12s\n", "#ops", "#diff", "height", "raw", "prov-sp", "solver")
	for _, r := range rows {
		fmt.Printf("%-6d %-6d %-7d %-12v %-12v %-12v\n", r.ops, r.diffs, r.height,
			r.raw.Round(time.Microsecond), r.prov.Round(time.Microsecond), r.solver.Round(time.Microsecond))
	}
}

// ------------------------------------------------------------------ fig 4

func fig4(sizes []int, perQuestion, sample int) {
	fmt.Println("Figure 4: data size vs mean per-component running time")
	ref := course.GenerateDB(sizes[len(sizes)-1], 1)
	wl := buildWorkload(ref, perQuestion)
	if len(wl) > sample {
		wl = wl[:sample]
	}
	fmt.Printf("%-9s %-11s %-11s %-11s %-16s %-12s %-12s\n",
		"|D|", "raw", "prov-all", "prov-sp", "solver-naive128", "solver-opt", "opt-all")
	for _, size := range sizes {
		db := course.GenerateDB(size, 1)
		var raw, provAll, provSP, naive, opt, optAll time.Duration
		n := 0
		for _, w := range wl {
			p := core.Problem{Q1: w.q1, Q2: w.q2, DB: db}
			differs, _, _, err := core.Disagrees(w.q1, w.q2, db, nil)
			if err != nil || !differs {
				continue
			}
			n++
			// raw: evaluate Q1 − Q2 plainly.
			t0 := time.Now()
			_, _, _, err = core.Disagrees(w.q1, w.q2, db, nil)
			check(err)
			raw += time.Since(t0)
			// prov-all: provenance of the full difference, both directions.
			t0 = time.Now()
			_, _ = eval.EvalProv(&ra.Diff{L: w.q1, R: w.q2}, db, nil)
			_, _ = eval.EvalProv(&ra.Diff{L: w.q2, R: w.q1}, db, nil)
			provAll += time.Since(t0)
			// The remaining components come out of instrumented runs.
			_, sB, err := core.Basic(p, 128)
			if err == nil {
				naive += sB.SolverTime
			}
			if _, sA, err := core.OptSigmaAll(p); err == nil {
				optAll += sA.SolverTime
			}
			_, sO, err := core.OptSigma(p)
			if err == nil {
				provSP += sO.ProvEvalTime
				opt += sO.SolverTime
			}
		}
		if n == 0 {
			continue
		}
		d := time.Duration(n)
		fmt.Printf("%-9d %-11v %-11v %-11v %-16v %-12v %-12v\n", size,
			(raw / d).Round(time.Microsecond), (provAll / d).Round(time.Microsecond),
			(provSP / d).Round(time.Microsecond), (naive / d).Round(time.Microsecond),
			(opt / d).Round(time.Microsecond), (optAll / d).Round(time.Microsecond))
	}
}

// ------------------------------------------------------------------ fig 5

func fig5(size, perQuestion, sample int) {
	fmt.Println("Figure 5: witness size vs solver strategy")
	db := course.GenerateDB(size, 1)
	wl := buildWorkload(db, perQuestion)
	if len(wl) > sample {
		wl = wl[:sample]
	}
	strategies := []struct {
		name string
		m    int
	}{{"naive-1", 1}, {"naive-16", 16}, {"naive-128", 128}, {"opt", 0}}
	fmt.Printf("%-11s %-14s %s\n", "strategy", "mean size", "mean models tried")
	for _, s := range strategies {
		totalSize, totalTried, n := 0, 0, 0
		for _, w := range wl {
			p := core.Problem{Q1: w.q1, Q2: w.q2, DB: db}
			kind := "naive"
			if s.name == "opt" {
				kind = "opt"
			}
			sz, tried, err := core.SolveWitnessStrategy(p, kind, s.m)
			if err != nil {
				continue
			}
			totalSize += sz
			totalTried += tried
			n++
		}
		if n == 0 {
			continue
		}
		fmt.Printf("%-11s %-14.2f %.1f\n", s.name, float64(totalSize)/float64(n), float64(totalTried)/float64(n))
	}
}

// ------------------------------------------------------------------ fig 6

func fig6(sf float64) {
	fmt.Println("Figure 6: TPC-H aggregate queries — Agg-Basic vs Agg-Opt (seconds)")
	db := tpch.Generate(sf, 1)
	fmt.Printf("generated %d tuples at sf=%v\n", db.Size(), sf)
	fmt.Printf("%-8s | %-10s %-10s %-10s %-6s | %-10s %-10s %-10s %-6s\n",
		"query", "b-raw", "b-prov", "b-solver", "b-size", "o-raw", "o-prov", "o-solver", "o-size")
	for _, qs := range tpch.All() {
		for wi, w := range qs.Wrong {
			p := core.Problem{Q1: qs.Correct, Q2: w, DB: db}
			differs, _, _, err := core.Disagrees(qs.Correct, w, db, nil)
			if err != nil || !differs {
				continue
			}
			name := fmt.Sprintf("%s/w%d", qs.Name, wi+1)
			bRaw, bProv, bSol, bSize := "-", "-", "-", "-"
			ceB, sB, err := core.AggBasic(p, core.AggOptions{MaxNodes: 10_000, MaxGroups: 1})
			if err == nil {
				bRaw, bProv, bSol = secs(sB.RawEvalTime), secs(sB.ProvEvalTime), secs(sB.SolverTime)
				bSize = fmt.Sprint(ceB.Size())
				if sB.TimedOut {
					bSol += "*"
				}
			} else if strings.Contains(err.Error(), "no verifying") {
				bSol = "timeout"
			}
			oRaw, oProv, oSol, oSize := "-", "-", "-", "-"
			ceO, sO, err := core.AggOpt(p, core.AggOptions{})
			if err == nil {
				oRaw, oProv, oSol = secs(sO.RawEvalTime), secs(sO.ProvEvalTime), secs(sO.SolverTime)
				oSize = fmt.Sprint(ceO.Size())
			}
			fmt.Printf("%-8s | %-10s %-10s %-10s %-6s | %-10s %-10s %-10s %-6s\n",
				name, bRaw, bProv, bSol, bSize, oRaw, oProv, oSol, oSize)
		}
	}
}

// ------------------------------------------------------------------ fig 7

func fig7(sf float64) {
	fmt.Println("Figure 7: parameterization on TPC-H Q18")
	db := tpch.Generate(sf, 1)
	q18 := tpch.Q18()
	fmt.Printf("%-12s %-16s %s\n", "", "solver runtime", "counterexample size")
	for wi, w := range q18.Wrong {
		p := core.Problem{Q1: q18.Correct, Q2: w, DB: db}
		differs, _, _, err := core.Disagrees(p.Q1, p.Q2, db, nil)
		if err != nil || !differs {
			continue
		}
		ceB, sB, errB := core.AggBasic(p, core.AggOptions{MaxNodes: 50_000})
		ceP, sP, errP := core.AggBasic(p, core.AggOptions{Parameterize: true, MaxNodes: 50_000})
		if errB == nil {
			fmt.Printf("w%d Agg-Basic %-16v %d\n", wi+1, sB.SolverTime.Round(time.Microsecond), ceB.Size())
		}
		if errP == nil {
			fmt.Printf("w%d Agg-Param %-16v %d  (params: %v)\n", wi+1, sP.SolverTime.Round(time.Microsecond), ceP.Size(), ceP.Params)
		}
	}
}

// ------------------------------------------------------------------- plan

// planDemo prints the cost-based join planner's decisions for a few
// multi-way TPC-H joins: the chosen join order, the estimated vs actual
// cardinality of every join (the planned tree is executed once with the
// report attached as observer), and whether the acyclic Yannakakis
// semi-join path fired.
func planDemo(sf float64) {
	fmt.Println("Cost-based join planner: chosen order, estimated vs actual rows")
	db := tpch.Generate(sf, 1)
	fmt.Printf("TPC-H instance: %d tuples at sf=%v\n\n", db.Size(), sf)
	queries := []struct{ name, src string }{
		{"3-way, selective filter last in source order",
			`(orders join[o_orderkey = l_orderkey] lineitem)
			 join[o_custkey = c_custkey] select[c_custkey < 20](customer)`},
		{"4-way chain",
			`((select[c_custkey < 50](customer) join[c_custkey = o_custkey] orders)
			 join[o_orderkey = l_orderkey] lineitem)
			 join[l_suppkey = s_suppkey] supplier`},
	}
	for _, q := range queries {
		printPlan(q.name, mustParse(q.src), db)
	}
}

func printPlan(name string, q ra.Node, db *relation.Database) {
	planned, report, err := engine.ExplainPlan(q, db, engine.Options{})
	if err != nil {
		fmt.Printf("%s: %v\n\n", name, err)
		return
	}
	// Execute the planned tree once with the report attached, so every join
	// records its actual output cardinality.
	if _, err := engine.RunOpts(engine.Set, planned, db, nil, engine.Options{
		NoOptimize: true, NoPlan: true, Observer: report,
	}); err != nil {
		fmt.Printf("%s: %v\n\n", name, err)
		return
	}
	fmt.Println(name)
	for _, reg := range report.Regions {
		if !reg.Planned {
			fmt.Printf("  region kept as written: %s (%s)\n", reg.Order, reg.Reason)
			continue
		}
		fmt.Printf("  order:   %s\n", reg.Order)
		fmt.Printf("  acyclic: %v (%d semi-joins), estimated peak %.4g rows\n", reg.Acyclic, reg.SemiJoins, reg.EstPeakRows)
		fmt.Printf("  %-58s %-12s %s\n", "join", "est rows", "actual rows")
		for _, j := range reg.Joins {
			fmt.Printf("  %-58s %-12.5g %d\n", j.Expr, j.EstRows, j.ActualRows)
		}
	}
	fmt.Println()
}

// ------------------------------------------------------------------ study

func studyExp() {
	fmt.Println("User-study simulation (Section 8) — 170 simulated students")
	c := study.Simulate(170, 2018)
	fmt.Print(c.FormatReport(2018))

	// And the tool actually works on the study problems: demo on (e).
	db := study.DB(25, 3)
	for _, prob := range study.Problems() {
		if prob.ID != "e" {
			continue
		}
		for _, m := range mutation.Mutants(prob.Correct) {
			differs, _, _, err := core.Disagrees(prob.Correct, m.Query, db, nil)
			if err != nil || !differs {
				continue
			}
			p := core.Problem{Q1: prob.Correct, Q2: m.Query, DB: db}
			ce, _, err := core.OptSigma(p)
			if err != nil {
				continue
			}
			fmt.Printf("\ndemo: problem (e), injected error %q → counterexample of %d tuples\n",
				m.Desc, ce.Size())
			break
		}
		break
	}
}

func secs(d time.Duration) string { return fmt.Sprintf("%.4f", d.Seconds()) }

func mustParse(src string) ra.Node {
	return raparser.MustParse(src)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}
