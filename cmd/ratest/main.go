// Command ratest finds a smallest counterexample distinguishing two
// relational algebra queries on a database instance — the command-line
// equivalent of the paper's RATest web tool.
//
// Usage:
//
//	ratest -data instance.txt -q1 correct.ra -q2 submitted.ra [-algo auto]
//
// The data file uses the format documented on ratest.LoadDatabase; the
// query files contain a single relational algebra expression each.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
)

func main() {
	dataPath := flag.String("data", "", "database instance file")
	q1Path := flag.String("q1", "", "reference (correct) query file")
	q2Path := flag.String("q2", "", "query under test file")
	algo := flag.String("algo", "auto", "algorithm: auto|optsigma|optsigmaall|basic|monotone|justar|spjudstar|aggbasic|aggparam|aggopt")
	showStats := flag.Bool("stats", false, "print timing statistics")
	flag.Parse()
	if *dataPath == "" || *q1Path == "" || *q2Path == "" {
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*dataPath)
	if err != nil {
		fatal(err)
	}
	db, constraints, err := ratest.LoadDatabase(f)
	f.Close()
	if err != nil {
		fatal(fmt.Errorf("loading %s: %w", *dataPath, err))
	}

	q1, err := loadQuery(*q1Path)
	if err != nil {
		fatal(err)
	}
	q2, err := loadQuery(*q2Path)
	if err != nil {
		fatal(err)
	}

	eq, err := ratest.Equivalent(q1, q2, db, nil)
	if err != nil {
		fatal(err)
	}
	if eq {
		fmt.Println("The queries return identical results on this instance; no counterexample within it.")
		return
	}

	ce, stats, err := ratest.Explain(q1, q2, db, &ratest.Options{
		Constraints: constraints,
		Algorithm:   *algo,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Print(ratest.FormatCounterexample(q1, q2, ce, nil))
	if *showStats {
		fmt.Printf("\nalgorithm=%s total=%v raw=%v prov=%v solver=%v models=%d optimal=%v\n",
			stats.Algorithm, stats.TotalTime, stats.RawEvalTime, stats.ProvEvalTime,
			stats.SolverTime, stats.ModelsTried, stats.Optimal)
	}
}

func loadQuery(path string) (ratest.Query, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	q, err := ratest.ParseQuery(string(b))
	if err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	return q, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ratest:", err)
	os.Exit(1)
}
