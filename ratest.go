// Package ratest is a Go reproduction of RATest, the system of Miao, Roy,
// and Yang, "Explaining Wrong Queries Using Small Examples" (SIGMOD 2019).
//
// Given a reference query Q1, a test query Q2, and a database instance D on
// which they disagree, ratest finds a smallest counterexample: a
// subinstance D' ⊆ D with Q1(D') ≠ Q2(D'), which explains the
// inequivalence with familiar data. Queries are written in a textual
// relational algebra (select/project/join/union/diff/rename/groupby).
//
// Quick start:
//
//	db := ratest.NewDatabase()
//	... // create relations, insert tuples
//	q1 := ratest.MustParseQuery("project[name](select[dept = 'CS'](Student join Registration))")
//	q2 := ratest.MustParseQuery("project[name](Student join Registration)")
//	ce, stats, err := ratest.Explain(q1, q2, db, nil)
//
// The heavy lifting lives in the internal packages: internal/core holds the
// algorithms (Basic, Optσ, the poly-time special cases, and the aggregate
// algorithms of Section 5), internal/engine the semiring-generic execution
// engine (set semantics, how-provenance and derivation counting over shared
// hash-based physical operators), internal/sat + internal/minones +
// internal/smt the solvers.
package ratest

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/ra"
	"repro/internal/raparser"
	"repro/internal/relation"
)

// ErrBudget is reported (wrapped) when an explanation fails because its
// context budget — deadline or cancellation — ran out rather than because
// the problem is defective. Detect it with errors.Is.
var ErrBudget = core.ErrBudget

// Re-exported data-model types.
type (
	// Database is a database instance with identifier-carrying tuples.
	Database = relation.Database
	// Relation is a named table.
	Relation = relation.Relation
	// Schema describes a relation's attributes.
	Schema = relation.Schema
	// Attribute is a named, typed column.
	Attribute = relation.Attribute
	// Tuple is an ordered list of values.
	Tuple = relation.Tuple
	// TupleID identifies a base tuple.
	TupleID = relation.TupleID
	// Value is a scalar database value.
	Value = relation.Value
	// Constraint is an integrity constraint.
	Constraint = relation.Constraint
	// Key declares a uniqueness constraint.
	Key = relation.Key
	// ForeignKey declares a referential constraint.
	ForeignKey = relation.ForeignKey
	// NotNull declares a non-null constraint.
	NotNull = relation.NotNull
	// FD declares a functional dependency.
	FD = relation.FD

	// Query is a relational algebra operator tree.
	Query = ra.Node

	// Counterexample is a subinstance on which the queries disagree.
	Counterexample = core.Counterexample
	// Stats reports per-component timings and witness size.
	Stats = core.Stats
)

// Value constructors, re-exported.
var (
	NewDatabase = relation.NewDatabase
	NewSchema   = relation.NewSchema
	Attr        = relation.Attr
	NewTuple    = relation.NewTuple
	Int         = relation.Int
	Float       = relation.Float
	Str         = relation.String
	Bool        = relation.Bool
	Null        = relation.Null
	ParseValue  = relation.ParseValue
)

// Kind constants for schema construction.
const (
	KindInt    = relation.KindInt
	KindFloat  = relation.KindFloat
	KindString = relation.KindString
	KindBool   = relation.KindBool
	KindNull   = relation.KindNull
)

// ParseQuery parses the textual relational algebra syntax, e.g.
//
//	project[name, major](select[dept = 'CS'](Student join Registration))
func ParseQuery(src string) (Query, error) { return raparser.Parse(src) }

// MustParseQuery parses a query and panics on error.
func MustParseQuery(src string) Query { return raparser.MustParse(src) }

// Options configure Explain.
type Options struct {
	// Constraints that counterexamples must satisfy (foreign keys are
	// enforced by the solver; keys/FDs/not-null hold automatically on
	// subinstances of a valid instance).
	Constraints []Constraint
	// Params binds the queries' @-parameters.
	Params map[string]Value
	// Algorithm forces a specific algorithm: "", "auto", "optsigma",
	// "optsigmaall", "basic", "monotone", "justar", "spjudstar",
	// "aggbasic", "aggparam", "aggopt".
	Algorithm string
	// Delta is the model budget of the Basic algorithm (default 128).
	Delta int
	// MaxConflicts, when > 0, bounds each SAT call's conflict count; solves
	// exceeding it report an unknown status instead of running on.
	MaxConflicts int64
	// MaxRows, when > 0, tightens the per-evaluation intermediate-row
	// budget below the engine-wide default (it can never loosen it).
	MaxRows int
}

// Explain finds a small counterexample distinguishing q1 (the reference
// query) from q2 (the query under test) within db. It dispatches on the
// query class like the RATest system (Section 6): aggregate queries go
// through the Section 5 algorithms, SPJUD queries through Optσ.
func Explain(q1, q2 Query, db *Database, opts *Options) (*Counterexample, *Stats, error) {
	return ExplainContext(context.Background(), q1, q2, db, opts)
}

// ExplainContext is Explain under a caller-supplied context: the context's
// deadline/cancellation is threaded through the search loops and into the
// SAT/SMT solvers, so a request-scoped budget aborts an explanation in
// flight (the serving layer's per-request wall-clock budget). A budget
// failure is reported as an error wrapping ErrBudget and the context error;
// partial results are never returned unverified.
func ExplainContext(ctx context.Context, q1, q2 Query, db *Database, opts *Options) (*Counterexample, *Stats, error) {
	if opts == nil {
		opts = &Options{}
	}
	if ctx == nil {
		ctx = context.Background()
	}
	p := core.Problem{
		Q1: q1, Q2: q2, DB: db, Constraints: opts.Constraints, Params: opts.Params,
		Ctx: ctx, MaxConflicts: opts.MaxConflicts, MaxRows: opts.MaxRows,
	}
	switch opts.Algorithm {
	case "", "auto":
		return core.Explain(p)
	case "optsigma":
		return core.OptSigma(p)
	case "optsigmaall":
		return core.OptSigmaAll(p)
	case "basic":
		return core.Basic(p, opts.Delta)
	case "monotone":
		return core.MonotoneSWP(p, 0)
	case "justar":
		return core.JUStarSWP(p)
	case "spjudstar":
		return core.SPJUDStarSWP(p, 0)
	case "aggbasic":
		return core.AggBasic(p, core.AggOptions{})
	case "aggparam":
		return core.AggBasic(p, core.AggOptions{Parameterize: true})
	case "aggopt":
		return core.AggOpt(p, core.AggOptions{})
	case "shrinkgreedy":
		// Solver-free: agree-check plus greedy shrink. Used by the serving
		// layer's degradation ladder; yields a verified (not necessarily
		// minimal) counterexample without any SAT/SMT work.
		return core.ShrinkGreedy(p)
	}
	return nil, nil, fmt.Errorf("ratest: unknown algorithm %q", opts.Algorithm)
}

// EnumerateSmallest returns up to max distinct smallest counterexamples
// (Example 2 of the paper notes the running example has four). Supported
// for SPJUD queries.
func EnumerateSmallest(q1, q2 Query, db *Database, opts *Options, max int) ([]*Counterexample, error) {
	if opts == nil {
		opts = &Options{}
	}
	return core.EnumerateSmallest(core.Problem{
		Q1: q1, Q2: q2, DB: db, Constraints: opts.Constraints, Params: opts.Params,
	}, max)
}

// Eval evaluates a query over a database (set semantics).
func Eval(q Query, db *Database, params map[string]Value) (*Relation, error) {
	return engine.Eval(q, db, params)
}

// Equivalent reports whether the two queries agree on db (i.e., db is not a
// counterexample for them).
func Equivalent(q1, q2 Query, db *Database, params map[string]Value) (bool, error) {
	differs, _, _, err := core.Disagrees(q1, q2, db, params)
	return !differs, err
}

// Verify checks that ce is a genuine counterexample for q1 vs q2 on db.
func Verify(q1, q2 Query, db *Database, opts *Options, ce *Counterexample) error {
	if opts == nil {
		opts = &Options{}
	}
	return core.Verify(core.Problem{Q1: q1, Q2: q2, DB: db, Constraints: opts.Constraints, Params: opts.Params}, ce)
}

// FormatCounterexample renders a counterexample for display, including the
// two query results on it (what the RATest web UI shows, Section 6).
func FormatCounterexample(q1, q2 Query, ce *Counterexample, params map[string]Value) string {
	if ce.Params != nil {
		params = ce.Params
	}
	if ce.Q1 != nil && ce.Q2 != nil {
		q1, q2 = ce.Q1, ce.Q2
	}
	out := fmt.Sprintf("Counterexample with %d tuples:\n%s", ce.Size(), ce.DB)
	if len(ce.Params) > 0 {
		out += fmt.Sprintf("Parameter setting: %v\n", ce.Params)
	}
	r1, err1 := engine.Eval(q1, ce.DB, params)
	r2, err2 := engine.Eval(q2, ce.DB, params)
	if err1 == nil && err2 == nil {
		out += fmt.Sprintf("\nReference query result:\n%s\nTest query result:\n%s", r1, r2)
	}
	return out
}
