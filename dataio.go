package ratest

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/relation"
)

// LoadDatabase reads a database instance from a simple text format:
//
//	relation Student(name: string, major: string)
//	Mary, CS
//	John, ECON
//
//	relation Registration(name: string, course: string, dept: string, grade: int)
//	Mary, 216, CS, 100
//
//	key Student(name)
//	fk Registration(name) -> Student(name)
//
// Lines starting with # are comments. String values may be quoted with
// single quotes (required when they contain commas). It returns the
// instance and the declared constraints.
func LoadDatabase(r io.Reader) (*Database, []Constraint, error) {
	db := relation.NewDatabase()
	var constraints []Constraint
	var current *relation.Relation
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		switch {
		case strings.HasPrefix(line, "relation "):
			name, schema, err := parseRelationDecl(strings.TrimPrefix(line, "relation "))
			if err != nil {
				return nil, nil, fmt.Errorf("line %d: %v", lineNo, err)
			}
			current = db.CreateRelation(name, schema)
		case strings.HasPrefix(line, "key "):
			rel, attrs, err := parseRelAttrs(strings.TrimPrefix(line, "key "))
			if err != nil {
				return nil, nil, fmt.Errorf("line %d: %v", lineNo, err)
			}
			constraints = append(constraints, relation.Key{Relation: rel, Attrs: attrs})
			current = nil
		case strings.HasPrefix(line, "fk "):
			rest := strings.TrimPrefix(line, "fk ")
			parts := strings.Split(rest, "->")
			if len(parts) != 2 {
				return nil, nil, fmt.Errorf("line %d: foreign key needs \"child(attrs) -> parent(attrs)\"", lineNo)
			}
			cRel, cAttrs, err := parseRelAttrs(strings.TrimSpace(parts[0]))
			if err != nil {
				return nil, nil, fmt.Errorf("line %d: %v", lineNo, err)
			}
			pRel, pAttrs, err := parseRelAttrs(strings.TrimSpace(parts[1]))
			if err != nil {
				return nil, nil, fmt.Errorf("line %d: %v", lineNo, err)
			}
			constraints = append(constraints, relation.ForeignKey{
				ChildRel: cRel, ChildAttrs: cAttrs, ParentRel: pRel, ParentAttrs: pAttrs})
			current = nil
		case strings.HasPrefix(line, "notnull "):
			rel, attrs, err := parseRelAttrs(strings.TrimPrefix(line, "notnull "))
			if err != nil || len(attrs) != 1 {
				return nil, nil, fmt.Errorf("line %d: notnull needs rel(attr)", lineNo)
			}
			constraints = append(constraints, relation.NotNull{Relation: rel, Attr: attrs[0]})
			current = nil
		default:
			if current == nil {
				return nil, nil, fmt.Errorf("line %d: tuple outside a relation block: %q", lineNo, line)
			}
			vals, err := splitCSV(line)
			if err != nil {
				return nil, nil, fmt.Errorf("line %d: %v", lineNo, err)
			}
			if len(vals) != current.Schema.Arity() {
				return nil, nil, fmt.Errorf("line %d: %d values for %d columns", lineNo, len(vals), current.Schema.Arity())
			}
			tup := make(Tuple, len(vals))
			for i, v := range vals {
				tup[i] = coerce(relation.ParseValue(v), current.Schema.Attrs[i].Type)
			}
			db.Insert(current.Name, tup)
		}
	}
	if err := scanner.Err(); err != nil {
		return nil, nil, err
	}
	return db, constraints, nil
}

func parseRelationDecl(s string) (string, Schema, error) {
	open := strings.Index(s, "(")
	if open < 0 || !strings.HasSuffix(s, ")") {
		return "", Schema{}, fmt.Errorf("bad relation declaration %q", s)
	}
	name := strings.TrimSpace(s[:open])
	var attrs []Attribute
	for _, part := range strings.Split(s[open+1:len(s)-1], ",") {
		bits := strings.SplitN(part, ":", 2)
		if len(bits) != 2 {
			return "", Schema{}, fmt.Errorf("attribute %q needs name: type", part)
		}
		var kind relation.Kind
		switch strings.TrimSpace(strings.ToLower(bits[1])) {
		case "int", "integer":
			kind = relation.KindInt
		case "float", "double", "decimal":
			kind = relation.KindFloat
		case "string", "text", "varchar":
			kind = relation.KindString
		case "bool", "boolean":
			kind = relation.KindBool
		default:
			return "", Schema{}, fmt.Errorf("unknown type %q", bits[1])
		}
		attrs = append(attrs, relation.Attr(strings.TrimSpace(bits[0]), kind))
	}
	return name, relation.Schema{Attrs: attrs}, nil
}

func parseRelAttrs(s string) (string, []string, error) {
	open := strings.Index(s, "(")
	if open < 0 || !strings.HasSuffix(strings.TrimSpace(s), ")") {
		return "", nil, fmt.Errorf("expected rel(attrs), got %q", s)
	}
	name := strings.TrimSpace(s[:open])
	inner := strings.TrimSpace(s)
	inner = inner[open+1 : len(inner)-1]
	var attrs []string
	for _, a := range strings.Split(inner, ",") {
		attrs = append(attrs, strings.TrimSpace(a))
	}
	return name, attrs, nil
}

// splitCSV splits a comma-separated row, honoring single-quoted fields.
func splitCSV(line string) ([]string, error) {
	var out []string
	var b strings.Builder
	inQuote := false
	for i := 0; i < len(line); i++ {
		c := line[i]
		switch {
		case c == '\'':
			if inQuote && i+1 < len(line) && line[i+1] == '\'' {
				b.WriteByte('\'')
				i++
				continue
			}
			inQuote = !inQuote
			b.WriteByte(c)
		case c == ',' && !inQuote:
			out = append(out, strings.TrimSpace(b.String()))
			b.Reset()
		default:
			b.WriteByte(c)
		}
	}
	if inQuote {
		return nil, fmt.Errorf("unterminated quote in %q", line)
	}
	out = append(out, strings.TrimSpace(b.String()))
	return out, nil
}

// coerce adjusts a parsed value to the declared column type (e.g. bare words
// parse as strings; ints widen to floats).
func coerce(v Value, kind relation.Kind) Value {
	if v.IsNull() || v.Kind() == kind {
		return v
	}
	switch kind {
	case relation.KindFloat:
		if v.Kind() == relation.KindInt {
			return relation.Float(float64(v.AsInt()))
		}
	case relation.KindString:
		return relation.String(v.String())
	}
	return v
}

// DumpDatabase writes a database in the LoadDatabase text format.
func DumpDatabase(w io.Writer, db *Database, constraints []Constraint) error {
	for _, name := range db.Names() {
		r := db.Relation(name)
		fmt.Fprintf(w, "relation %s(", name)
		for i, a := range r.Schema.Attrs {
			if i > 0 {
				fmt.Fprint(w, ", ")
			}
			fmt.Fprintf(w, "%s: %s", a.Name, a.Type)
		}
		fmt.Fprintln(w, ")")
		for _, t := range r.Tuples {
			parts := make([]string, len(t))
			for i, v := range t {
				if v.Kind() == relation.KindString {
					parts[i] = "'" + strings.ReplaceAll(v.AsString(), "'", "''") + "'"
				} else {
					parts[i] = v.String()
				}
			}
			fmt.Fprintln(w, strings.Join(parts, ", "))
		}
		fmt.Fprintln(w)
	}
	for _, c := range constraints {
		switch k := c.(type) {
		case relation.Key:
			fmt.Fprintf(w, "key %s(%s)\n", k.Relation, strings.Join(k.Attrs, ", "))
		case relation.ForeignKey:
			fmt.Fprintf(w, "fk %s(%s) -> %s(%s)\n", k.ChildRel, strings.Join(k.ChildAttrs, ", "),
				k.ParentRel, strings.Join(k.ParentAttrs, ", "))
		case relation.NotNull:
			fmt.Fprintf(w, "notnull %s(%s)\n", k.Relation, k.Attr)
		}
	}
	return nil
}
