package ratest

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/testdb"
)

const example1Text = `
# The paper's Figure 1 instance.
relation Student(name: string, major: string)
Mary, CS
John, ECON
Jesse, CS

relation Registration(name: string, course: string, dept: string, grade: int)
Mary, '216', CS, 100
Mary, '230', CS, 75
Mary, '208D', ECON, 95
John, '316', CS, 90
John, '208D', ECON, 88
Jesse, '216', CS, 95
Jesse, '316', CS, 90
Jesse, '330', CS, 85

key Student(name)
key Registration(name, course)
fk Registration(name) -> Student(name)
`

func TestLoadDatabase(t *testing.T) {
	db, cs, err := LoadDatabase(strings.NewReader(example1Text))
	if err != nil {
		t.Fatal(err)
	}
	if db.Size() != 11 {
		t.Fatalf("size = %d, want 11", db.Size())
	}
	if len(cs) != 3 {
		t.Fatalf("constraints = %d, want 3", len(cs))
	}
	if db.Relation("Registration").Schema.Attrs[3].Type != KindInt {
		t.Error("grade should be int")
	}
}

func TestLoadDatabaseErrors(t *testing.T) {
	bad := []string{
		"Mary, CS",                             // tuple before relation
		"relation R(x)",                        // missing type
		"relation R(x: blob)",                  // unknown type
		"relation R(x: int)\n1, 2",             // arity mismatch
		"relation R(x: string)\n'unterminated", // bad quote
		"fk R(x) Student(y)",                   // missing arrow
	}
	for _, src := range bad {
		if _, _, err := LoadDatabase(strings.NewReader(src)); err == nil {
			t.Errorf("LoadDatabase(%q) should fail", src)
		}
	}
}

func TestDumpLoadRoundTrip(t *testing.T) {
	db, cs, err := LoadDatabase(strings.NewReader(example1Text))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := DumpDatabase(&buf, db, cs); err != nil {
		t.Fatal(err)
	}
	db2, cs2, err := LoadDatabase(&buf)
	if err != nil {
		t.Fatalf("reload: %v\n%s", err, buf.String())
	}
	if db2.Size() != db.Size() || len(cs2) != len(cs) {
		t.Errorf("round trip: size %d->%d constraints %d->%d", db.Size(), db2.Size(), len(cs), len(cs2))
	}
}

func TestExplainEndToEnd(t *testing.T) {
	db, cs, err := LoadDatabase(strings.NewReader(example1Text))
	if err != nil {
		t.Fatal(err)
	}
	q1 := MustParseQuery(`
		project[name, major](select[dept = 'CS'](Student join Registration))
		diff
		project[s.name, s.major](
			select[s.name = r1.name and s.name = r2.name and r1.course <> r2.course
			       and r1.dept = 'CS' and r2.dept = 'CS']
			(rename[s](Student) cross rename[r1](Registration) cross rename[r2](Registration)))`)
	q2 := MustParseQuery(`project[name, major](select[dept = 'CS'](Student join Registration))`)

	eq, err := Equivalent(q1, q2, db, nil)
	if err != nil || eq {
		t.Fatalf("queries should disagree on D (eq=%v, err=%v)", eq, err)
	}
	ce, stats, err := Explain(q1, q2, db, &Options{Constraints: cs})
	if err != nil {
		t.Fatal(err)
	}
	if ce.Size() != 3 {
		t.Errorf("counterexample size = %d, want 3", ce.Size())
	}
	if stats.Algorithm != "OptSigma" {
		t.Errorf("algorithm = %s", stats.Algorithm)
	}
	if err := Verify(q1, q2, db, &Options{Constraints: cs}, ce); err != nil {
		t.Errorf("Verify: %v", err)
	}
	out := FormatCounterexample(q1, q2, ce, nil)
	for _, want := range []string{"3 tuples", "Student", "Registration", "result"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted output missing %q:\n%s", want, out)
		}
	}
}

func TestExplainAlgorithms(t *testing.T) {
	db := testdb.Example1DB()
	q1, q2 := testdb.Q1(), testdb.Q2()
	for _, algo := range []string{"auto", "optsigma", "basic", "spjudstar"} {
		ce, _, err := Explain(q1, q2, db, &Options{Algorithm: algo})
		if err != nil {
			t.Errorf("%s: %v", algo, err)
			continue
		}
		if ce.Size() != 3 {
			t.Errorf("%s: size = %d, want 3", algo, ce.Size())
		}
	}
	// Aggregate algorithms.
	for _, algo := range []string{"aggbasic", "aggparam", "aggopt"} {
		ce, _, err := Explain(testdb.AggQ1(), testdb.AggQ2(), db, &Options{Algorithm: algo})
		if err != nil {
			t.Errorf("%s: %v", algo, err)
			continue
		}
		if err := Verify(testdb.AggQ1(), testdb.AggQ2(), db, nil, ce); err != nil {
			t.Errorf("%s: %v", algo, err)
		}
	}
	if _, _, err := Explain(q1, q2, db, &Options{Algorithm: "nope"}); err == nil {
		t.Error("unknown algorithm should error")
	}
}

func TestEvalFacade(t *testing.T) {
	db := testdb.Example1DB()
	r, err := Eval(MustParseQuery("project[name](Student)"), db, nil)
	if err != nil || r.Len() != 3 {
		t.Errorf("Eval = %v, %v", r, err)
	}
}

func TestParseQueryError(t *testing.T) {
	if _, err := ParseQuery("select["); err == nil {
		t.Error("bad query should fail")
	}
}
