// Benchmarks regenerating every table and figure of the paper's evaluation.
// Each benchmark mirrors one experiment; cmd/experiments prints the same
// measurements as paper-style tables at larger scales. Shapes to expect:
//
//	Table 4  — Basic (SCP) is several times slower than Optσ (SWP) at equal
//	           counterexample quality;
//	Figure 4 — prov-sp (selection pushdown) ≪ prov-all; solver-opt adds
//	           negligible overhead over naive enumeration;
//	Figure 5 — Opt's witness is never larger than Naive-M's;
//	Figure 6 — Agg-Opt ≫ Agg-Basic on the TPC-H queries;
//	Figure 7 — parameterization shrinks Q18 counterexamples.
package ratest

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/course"
	"repro/internal/eval"
	"repro/internal/minones"
	"repro/internal/ra"
	"repro/internal/sat"
	"repro/internal/study"
	"repro/internal/testdb"
	"repro/internal/tpch"
)

// benchWorkload caches the course instance and discovered wrong queries.
type benchWorkload struct {
	db *Database
	wl []struct{ q1, q2 Query }
}

var benchCache = map[int]*benchWorkload{}

func courseWorkload(b *testing.B, size int) *benchWorkload {
	b.Helper()
	if w, ok := benchCache[size]; ok {
		return w
	}
	db := course.GenerateDB(size, 1)
	bank := course.WrongQueryBank(db, 4)
	discovered, err := course.DiscoveredWrong(db, bank)
	if err != nil {
		b.Fatal(err)
	}
	correct := map[string]Query{}
	for _, q := range course.Questions() {
		correct[q.ID] = q.Correct
	}
	w := &benchWorkload{db: db}
	for _, d := range discovered {
		if len(w.wl) >= 10 {
			break
		}
		w.wl = append(w.wl, struct{ q1, q2 Query }{correct[d.Question], d.Query})
	}
	benchCache[size] = w
	return w
}

// BenchmarkTable1_PolyTimeClasses: the tractable classes of Table 1 solved
// by the dedicated poly-time algorithm vs the general solver.
func BenchmarkTable1_PolyTimeClasses(b *testing.B) {
	db := course.GenerateDB(2000, 1)
	q1 := MustParseQuery("project[name](select[dept = 'CS'](Student join Registration))")
	q2 := MustParseQuery("project[name](select[dept = 'PHYS'](Student join Registration))")
	p := core.Problem{Q1: q1, Q2: q2, DB: db}
	b.Run("SPJU/MonotoneDNF", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := core.MonotoneSWP(p, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("SPJU/OptSigma", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := core.OptSigma(p); err != nil {
				b.Fatal(err)
			}
		}
	})
	p5 := core.Problem{Q1: testdb.Q1(), Q2: testdb.Q2(), DB: testdb.Example1DB()}
	b.Run("SPJUDstar/Enumeration", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := core.SPJUDStarSWP(p5, 1<<16); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTable3_Discovery: evaluating the wrong-query bank against
// instances of growing size (the |D| sweep of Table 3).
func BenchmarkTable3_Discovery(b *testing.B) {
	ref := course.GenerateDB(4000, 1)
	bank := course.WrongQueryBank(ref, 4)
	for _, size := range []int{1000, 4000} {
		db := course.GenerateDB(size, 1)
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				found, err := course.DiscoveredWrong(db, bank)
				if err != nil {
					b.Fatal(err)
				}
				if len(found) == 0 {
					b.Fatal("nothing discovered")
				}
			}
		})
	}
}

// BenchmarkTable4_SCPvsSWP: Basic (solves SCP by iterating all differing
// tuples) against Optσ (solves SWP for one tuple with the optimizer).
func BenchmarkTable4_SCPvsSWP(b *testing.B) {
	w := courseWorkload(b, 4000)
	b.Run("SCP-Basic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pair := w.wl[i%len(w.wl)]
			p := core.Problem{Q1: pair.q1, Q2: pair.q2, DB: w.db}
			if _, _, err := core.Basic(p, 128); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("SWP-OptSigma", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pair := w.wl[i%len(w.wl)]
			p := core.Problem{Q1: pair.q1, Q2: pair.q2, DB: w.db}
			if _, _, err := core.OptSigma(p); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFigure3_QueryComplexity: Optσ runtime across queries of
// increasing operator count.
func BenchmarkFigure3_QueryComplexity(b *testing.B) {
	db := course.GenerateDB(4000, 1)
	for _, q := range course.Questions() {
		m := ra.ComputeMetrics(q.Correct)
		// A canonical wrong query: drop to the monotone core via mutation
		// of the selection; reuse the mutant bank instead for stability.
		bank := course.WrongQueryBank(db, 1)
		var wrong Query
		for _, w := range bank {
			if w.Question == q.ID {
				wrong = w.Query
				break
			}
		}
		if wrong == nil {
			continue
		}
		differs, _, _, err := core.Disagrees(q.Correct, wrong, db, nil)
		if err != nil || !differs {
			continue
		}
		b.Run(fmt.Sprintf("%s/ops=%d/diffs=%d", q.ID, m.Operators, m.Diffs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p := core.Problem{Q1: q.Correct, Q2: wrong, DB: db}
				if _, _, err := core.OptSigma(p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFigure4_Components: the per-component cost at growing |D|:
// raw difference evaluation, provenance for all tuples, provenance with
// selection pushdown, and the two solver strategies.
func BenchmarkFigure4_Components(b *testing.B) {
	for _, size := range []int{1000, 4000} {
		w := courseWorkload(b, size)
		pair := w.wl[0]
		diffQ := &ra.Diff{L: pair.q1, R: pair.q2}
		b.Run(fmt.Sprintf("size=%d/raw", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, _, err := core.Disagrees(pair.q1, pair.q2, w.db, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("size=%d/prov-all", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eval.EvalProv(diffQ, w.db, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("size=%d/prov-sp+solver-opt", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p := core.Problem{Q1: pair.q1, Q2: pair.q2, DB: w.db}
				if _, _, err := core.OptSigma(p); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("size=%d/solver-naive-128", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p := core.Problem{Q1: pair.q1, Q2: pair.q2, DB: w.db}
				if _, _, err := core.SolveWitnessStrategy(p, "naive", 128); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFigure5_SolverStrategies: witness quality/cost of Naive-M vs Opt.
func BenchmarkFigure5_SolverStrategies(b *testing.B) {
	w := courseWorkload(b, 4000)
	pair := w.wl[0]
	p := core.Problem{Q1: pair.q1, Q2: pair.q2, DB: w.db}
	for _, s := range []struct {
		name string
		kind string
		m    int
	}{{"naive-1", "naive", 1}, {"naive-16", "naive", 16}, {"naive-128", "naive", 128}, {"opt", "opt", 0}} {
		b.Run(s.name, func(b *testing.B) {
			var size int
			for i := 0; i < b.N; i++ {
				var err error
				size, _, err = core.SolveWitnessStrategy(p, s.kind, s.m)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(size), "witness-tuples")
		})
	}
}

// BenchmarkFigure6_TPCH: the aggregate algorithms on the TPC-H workload.
func BenchmarkFigure6_TPCH(b *testing.B) {
	db := tpch.Generate(0.0004, 1)
	for _, qs := range tpch.All() {
		wrong := qs.Wrong[0]
		differs, _, _, err := core.Disagrees(qs.Correct, wrong, db, nil)
		if err != nil || !differs {
			continue
		}
		p := core.Problem{Q1: qs.Correct, Q2: wrong, DB: db}
		b.Run(qs.Name+"/Agg-Opt", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := core.AggOpt(p, core.AggOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(qs.Name+"/Agg-Basic", func(b *testing.B) {
			var size int
			for i := 0; i < b.N; i++ {
				ce, _, err := core.AggBasic(p, core.AggOptions{MaxNodes: 10_000, MaxGroups: 1})
				if err != nil {
					b.Skip("Agg-Basic timeout (expected for large groups, cf. Q4 in the paper)")
				}
				size = ce.Size()
			}
			b.ReportMetric(float64(size), "ce-tuples")
		})
	}
}

// BenchmarkFigure7_Parameterization: Agg-Basic vs Agg-Param on Example 5/6
// (the same effect Figure 7 shows on TPC-H Q18).
func BenchmarkFigure7_Parameterization(b *testing.B) {
	db := testdb.Example1DB()
	p := core.Problem{Q1: testdb.HavingQ1(), Q2: testdb.HavingQ2(), DB: db}
	b.Run("Agg-Basic", func(b *testing.B) {
		var size int
		for i := 0; i < b.N; i++ {
			ce, _, err := core.AggBasic(p, core.AggOptions{})
			if err != nil {
				b.Fatal(err)
			}
			size = ce.Size()
		}
		b.ReportMetric(float64(size), "ce-tuples")
	})
	b.Run("Agg-Param", func(b *testing.B) {
		var size int
		for i := 0; i < b.N; i++ {
			ce, _, err := core.AggBasic(p, core.AggOptions{Parameterize: true})
			if err != nil {
				b.Fatal(err)
			}
			size = ce.Size()
		}
		b.ReportMetric(float64(size), "ce-tuples")
	})
}

// BenchmarkStudySimulation: the Section 8 cohort simulation.
func BenchmarkStudySimulation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := study.Simulate(170, int64(i))
		if len(c.UsageStats()) != 5 {
			b.Fatal("bad usage stats")
		}
	}
}

// BenchmarkSATSolver: the CDCL substrate on pigeonhole instances.
func BenchmarkSATSolver(b *testing.B) {
	for _, n := range []int{6, 7} {
		b.Run(fmt.Sprintf("PHP-%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := sat.New()
				vr := func(p, h int) int { return p*n + h + 1 }
				for p := 0; p <= n; p++ {
					cl := make([]int, n)
					for h := 0; h < n; h++ {
						cl[h] = vr(p, h)
					}
					if err := s.AddClause(cl...); err != nil {
						b.Fatal(err)
					}
				}
				for h := 0; h < n; h++ {
					for p1 := 0; p1 <= n; p1++ {
						for p2 := p1 + 1; p2 <= n; p2++ {
							if err := s.AddClause(-vr(p1, h), -vr(p2, h)); err != nil {
								b.Fatal(err)
							}
						}
					}
				}
				if st := s.Solve(); st != sat.Unsat {
					b.Fatalf("PHP should be UNSAT, got %v", st)
				}
			}
		})
	}
}

// BenchmarkMinOnes: the min-ones optimizer on random-ish witness formulas.
func BenchmarkMinOnes(b *testing.B) {
	// (x_{3i+1} ∨ x_{3i+2} ∨ x_{3i+3}) for 20 groups: optimum = 20.
	var clauses [][]int
	n := 60
	for i := 0; i < 20; i++ {
		clauses = append(clauses, []int{3*i + 1, 3*i + 2, 3*i + 3})
	}
	counted := make([]int, n)
	for i := range counted {
		counted[i] = i + 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := minones.Minimize(n, clauses, counted, minones.Options{})
		if r.Status != minones.Optimal || r.Cost != 20 {
			b.Fatalf("status=%v cost=%d", r.Status, r.Cost)
		}
	}
}
