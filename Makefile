# Targets mirror the CI jobs in .github/workflows/ci.yml so that a green
# `make lint test race bench-smoke` locally means a green CI run.

GO ?= go
RATESTLINT := $(shell $(GO) env GOPATH)/bin/ratestlint

.PHONY: all lint test race bench-smoke fmt

all: lint test

# gofmt + go vet + the repo's own analyzer suite (see docs/LINTING.md).
lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...
	$(GO) build -o $(RATESTLINT) ./cmd/ratestlint
	$(GO) vet -vettool=$(RATESTLINT) ./...

test:
	$(GO) build ./...
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration of the batch/delta/planner benchmarks: compile-and-run
# smoke plus their embedded equivalence guards.
bench-smoke:
	$(GO) test -run '^$$' -bench 'Batch|PreparedDiff|Planner' -benchtime 1x ./internal/engine/...

fmt:
	gofmt -w .
