// TPC-H regression testing: validating rewritten aggregate queries.
//
// The paper's second motivating scenario (Section 1): a developer rewrites
// a complex aggregate query for performance and regression-tests it against
// the original. When results differ, a small counterexample pinpoints the
// bug. This example runs the paper's TPC-H workload (Q18 with two buggy
// rewrites) and shows both the Agg-Opt heuristic and the effect of
// parameterizing the HAVING threshold (Figure 7).
//
// Run with: go run ./examples/tpch_regression
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/tpch"
)

func main() {
	db := tpch.Generate(0.001, 7)
	fmt.Printf("TPC-H instance: %d tuples\n", db.Size())

	q18 := tpch.Q18()
	for i, wrong := range q18.Wrong {
		eq, err := ratest.Equivalent(q18.Correct, wrong, db, nil)
		if err != nil {
			log.Fatal(err)
		}
		if eq {
			fmt.Printf("\nrewrite #%d: no difference on this instance (needs more data)\n", i+1)
			continue
		}
		fmt.Printf("\nrewrite #%d differs from the original. Explaining...\n", i+1)

		// The heuristic algorithm (Algorithm 3).
		ce, stats, err := ratest.Explain(q18.Correct, wrong, db, &ratest.Options{
			Algorithm:   "aggopt",
			Constraints: tpch.Constraints(),
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Agg-Opt: %d-tuple counterexample in %v (raw %v, prov %v, solver %v)\n",
			ce.Size(), stats.TotalTime, stats.RawEvalTime, stats.ProvEvalTime, stats.SolverTime)
		if ce.Params != nil {
			fmt.Printf("  parameter setting: %v\n", ce.Params)
		}

		// The provenance-based algorithm with parameterization (Figure 7).
		ceP, statsP, err := ratest.Explain(q18.Correct, wrong, db, &ratest.Options{
			Algorithm: "aggparam",
		})
		if err == nil {
			fmt.Printf("Agg-Param: %d-tuple counterexample, solver %v, params %v\n",
				ceP.Size(), statsP.SolverTime, ceP.Params)
		}
	}
}
