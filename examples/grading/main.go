// Grading: an auto-grader loop over a bank of wrong student queries.
//
// This mirrors the paper's deployment scenario (Sections 7.1 and 8): a
// course has reference solutions and a hidden test instance; submissions
// that fail get back a small counterexample instead of the whole instance.
//
// Run with: go run ./examples/grading
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/core"
	"repro/internal/course"
)

func main() {
	// The hidden auto-grader instance (10k tuples).
	db := course.GenerateDB(10000, 42)
	fmt.Printf("hidden test instance: %d tuples\n", db.Size())

	// "Submissions": mutation-generated wrong queries, as stand-ins for
	// real student mistakes.
	bank := course.WrongQueryBank(db, 3)
	discovered, err := course.DiscoveredWrong(db, bank)
	if err != nil {
		log.Fatal(err)
	}
	correct := map[string]ratest.Query{}
	text := map[string]string{}
	for _, q := range course.Questions() {
		correct[q.ID] = q.Correct
		text[q.ID] = q.Text
	}

	graded := 0
	for _, sub := range discovered {
		if graded >= 5 {
			break
		}
		graded++
		fmt.Printf("\n--- submission for %s (%q)\n", sub.Question, text[sub.Question])
		fmt.Printf("    injected error: %s\n", sub.Desc)
		ce, stats, err := ratest.Explain(correct[sub.Question], sub.Query, db, &ratest.Options{
			Constraints: course.Constraints(),
		})
		if err != nil {
			fmt.Printf("    could not explain: %v\n", err)
			continue
		}
		fmt.Printf("    WRONG — counterexample with %d tuples (found in %v, shrunk from %d):\n",
			ce.Size(), stats.TotalTime, db.Size())
		for _, name := range ce.DB.Names() {
			r := ce.DB.Relation(name)
			if r.Len() > 0 {
				fmt.Printf("      %s", r)
			}
		}
		if err := core.Verify(core.Problem{Q1: correct[sub.Question], Q2: sub.Query, DB: db,
			Constraints: course.Constraints()}, ce); err != nil {
			log.Fatalf("invalid counterexample: %v", err)
		}
	}
	fmt.Printf("\n%d submissions graded; every counterexample verified.\n", graded)
}
