// Quickstart: the paper's running example (Example 1) end to end.
//
// A database course asks for "students registered for exactly one CS
// course". A student submits a query that actually returns students with
// one OR MORE CS courses. Given the 11-tuple test instance of Figure 1,
// ratest produces the 3-tuple counterexample of Example 2.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// Build the Figure 1 instance.
	db := ratest.NewDatabase()
	db.CreateRelation("Student", ratest.NewSchema(
		ratest.Attr("name", ratest.KindString),
		ratest.Attr("major", ratest.KindString)))
	db.CreateRelation("Registration", ratest.NewSchema(
		ratest.Attr("name", ratest.KindString),
		ratest.Attr("course", ratest.KindString),
		ratest.Attr("dept", ratest.KindString),
		ratest.Attr("grade", ratest.KindInt)))
	for _, s := range [][2]string{{"Mary", "CS"}, {"John", "ECON"}, {"Jesse", "CS"}} {
		db.Insert("Student", ratest.NewTuple(ratest.Str(s[0]), ratest.Str(s[1])))
	}
	regs := []struct {
		name, course, dept string
		grade              int64
	}{
		{"Mary", "216", "CS", 100}, {"Mary", "230", "CS", 75}, {"Mary", "208D", "ECON", 95},
		{"John", "316", "CS", 90}, {"John", "208D", "ECON", 88},
		{"Jesse", "216", "CS", 95}, {"Jesse", "316", "CS", 90}, {"Jesse", "330", "CS", 85},
	}
	for _, r := range regs {
		db.Insert("Registration", ratest.NewTuple(
			ratest.Str(r.name), ratest.Str(r.course), ratest.Str(r.dept), ratest.Int(r.grade)))
	}

	// The reference solution: exactly one CS course.
	q1 := ratest.MustParseQuery(`
		project[name, major](select[dept = 'CS'](Student join Registration))
		diff
		project[s.name, s.major](
			select[s.name = r1.name and s.name = r2.name and r1.course <> r2.course
			       and r1.dept = 'CS' and r2.dept = 'CS']
			(rename[s](Student) cross rename[r1](Registration) cross rename[r2](Registration)))`)

	// The student's wrong answer: one or more CS courses.
	q2 := ratest.MustParseQuery(
		`project[name, major](select[dept = 'CS'](Student join Registration))`)

	constraints := []ratest.Constraint{
		ratest.Key{Relation: "Student", Attrs: []string{"name"}},
		ratest.ForeignKey{ChildRel: "Registration", ChildAttrs: []string{"name"},
			ParentRel: "Student", ParentAttrs: []string{"name"}},
	}

	ce, stats, err := ratest.Explain(q1, q2, db, &ratest.Options{Constraints: constraints})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Found a smallest counterexample in %v using %s:\n\n", stats.TotalTime, stats.Algorithm)
	fmt.Print(ratest.FormatCounterexample(q1, q2, ce, nil))
}
