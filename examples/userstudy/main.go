// Userstudy: the Section 8 user-study infrastructure.
//
// Runs the cohort simulator that regenerates the shape of Figures 8–10 and
// Table 5, and then demonstrates the actual tool on the study's problem (e)
// ("bars frequented by either Ben or Dan, but not both") with an injected
// student error.
//
// Run with: go run ./examples/userstudy
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/mutation"
	"repro/internal/study"
)

func main() {
	cohort := study.Simulate(170, 2018)
	fmt.Print(cohort.FormatReport(2018))

	// Live demo on problem (e).
	db := study.DB(25, 3)
	var prob study.Problem
	for _, p := range study.Problems() {
		if p.ID == "e" {
			prob = p
		}
	}
	fmt.Printf("\nLive demo — problem (e): %s\n", prob.Text)
	for _, m := range mutation.Mutants(prob.Correct) {
		eq, err := ratest.Equivalent(prob.Correct, m.Query, db, nil)
		if err != nil || eq {
			continue
		}
		ce, _, err := ratest.Explain(prob.Correct, m.Query, db, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("injected error: %s\n", m.Desc)
		fmt.Print(ratest.FormatCounterexample(prob.Correct, m.Query, ce, nil))
		break
	}
}
